// ProxylessNAS-style search driver over a MixedConv1d supernet.
//
// Faithful to the baseline's cost model: exactly one path of the supernet
// is trained per batch (weight step on the sampled candidates only), and
// the architecture distribution is updated from validation batches. The
// original binary-gate path gradient is replaced with a REINFORCE estimator
// with a moving-average baseline over reward = -(val loss + lambda * size);
// same search space, same single-path memory footprint (substitution
// documented in DESIGN.md). The final architecture (per-layer argmax of
// alpha) is fine-tuned with early stopping, mirroring PIT's phase 3.
#pragma once

#include <vector>

#include "core/trainer.hpp"
#include "data/dataloader.hpp"
#include "nas/supernet.hpp"
#include "nn/module.hpp"

namespace pit::nas {

struct ProxylessOptions {
  /// Weight of the normalized model-size term in the architecture reward.
  double lambda_size = 0.3;
  /// Epochs of pure weight training with uniformly sampled paths before
  /// architecture updates begin.
  int warmup_epochs = 3;
  /// Upper bound on search epochs (each = one pass of weight training plus
  /// architecture updates).
  int max_search_epochs = 60;
  /// Fine-tuning epochs for the selected architecture.
  int finetune_epochs = 30;
  int patience = 5;  // convergence of the search and of the fine-tune
  double lr_weights = 1e-3;
  double lr_alpha = 0.5;
  /// Architecture updates drawn per epoch (validation batches).
  int arch_updates_per_epoch = 8;
  std::uint64_t sample_seed = 0;
  bool verbose = false;
};

struct ProxylessResult {
  std::vector<index_t> dilations;  // argmax-alpha candidate per layer
  double val_loss = 0.0;           // best validation loss after fine-tune
  index_t searchable_params = 0;   // selected candidates only
  double search_seconds = 0.0;
  double finetune_seconds = 0.0;
  double total_seconds = 0.0;
  int search_epochs = 0;
};

class ProxylessTrainer {
 public:
  /// `model` must own the layers in `mixed_layers`.
  ProxylessTrainer(nn::Module& model, std::vector<MixedConv1d*> mixed_layers,
                   core::LossFn loss, const ProxylessOptions& options);

  ProxylessResult run(data::DataLoader& train, data::DataLoader& val);

 private:
  nn::Module& model_;
  std::vector<MixedConv1d*> mixed_layers_;
  core::LossFn loss_;
  ProxylessOptions options_;
};

}  // namespace pit::nas
