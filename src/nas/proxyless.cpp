#include "nas/proxyless.hpp"

#include <chrono>
#include <cstdio>

#include "nn/optim.hpp"
#include "nn/schedule.hpp"
#include "tensor/error.hpp"

namespace pit::nas {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void sample_all(const std::vector<MixedConv1d*>& layers, RandomEngine& rng) {
  for (MixedConv1d* layer : layers) {
    layer->sample_path(rng);
  }
}

void activate_best(const std::vector<MixedConv1d*>& layers) {
  for (MixedConv1d* layer : layers) {
    layer->set_active(layer->best_candidate());
  }
}

index_t active_params(const std::vector<MixedConv1d*>& layers) {
  index_t total = 0;
  for (const MixedConv1d* layer : layers) {
    total += layer->candidate_params(layer->active());
  }
  return total;
}

index_t max_params(const std::vector<MixedConv1d*>& layers) {
  index_t total = 0;
  for (const MixedConv1d* layer : layers) {
    index_t biggest = 0;
    for (index_t i = 0; i < layer->num_candidates(); ++i) {
      biggest = std::max(biggest, layer->candidate_params(i));
    }
    total += biggest;
  }
  return total;
}

}  // namespace

ProxylessTrainer::ProxylessTrainer(nn::Module& model,
                                   std::vector<MixedConv1d*> mixed_layers,
                                   core::LossFn loss,
                                   const ProxylessOptions& options)
    : model_(model),
      mixed_layers_(std::move(mixed_layers)),
      loss_(std::move(loss)),
      options_(options) {
  PIT_CHECK(!mixed_layers_.empty(), "ProxylessTrainer: no supernet layers");
  PIT_CHECK(options.lambda_size >= 0.0,
            "ProxylessTrainer: lambda_size must be >= 0");
  PIT_CHECK(options.patience >= 1, "ProxylessTrainer: patience must be >= 1");
  PIT_CHECK(options.arch_updates_per_epoch >= 1,
            "ProxylessTrainer: arch_updates_per_epoch must be >= 1");
}

ProxylessResult ProxylessTrainer::run(data::DataLoader& train,
                                      data::DataLoader& val) {
  ProxylessResult result;
  const auto overall_start = Clock::now();
  RandomEngine path_rng(options_.sample_seed);
  nn::Adam weight_opt(model_.parameters(), options_.lr_weights);
  const double size_norm = static_cast<double>(max_params(mixed_layers_));

  // ---- Search: single-path weight training + REINFORCE arch updates. -----
  {
    const auto start = Clock::now();
    nn::EarlyStopping stopping(options_.patience);
    double reward_baseline = 0.0;
    bool baseline_ready = false;
    std::vector<index_t> last_argmax;
    int stable_epochs = 0;
    for (int epoch = 0; epoch < options_.max_search_epochs; ++epoch) {
      // Weight pass: sample a fresh path per batch and train only it.
      model_.train();
      train.reshuffle();
      for (index_t b = 0; b < train.num_batches(); ++b) {
        sample_all(mixed_layers_, path_rng);
        data::Batch batch = train.batch(b);
        model_.zero_grad();
        Tensor objective = loss_(model_.forward(batch.inputs), batch.targets);
        objective.backward();
        weight_opt.step();  // untouched candidates have zero grads
      }
      // Architecture pass after warmup: REINFORCE on sampled paths scored
      // by validation loss + size cost.
      if (epoch >= options_.warmup_epochs) {
        for (int u = 0; u < options_.arch_updates_per_epoch; ++u) {
          sample_all(mixed_layers_, path_rng);
          const index_t vb = path_rng.randint(val.num_batches());
          data::Batch batch = val.batch(vb);
          model_.eval();
          double sampled_loss = 0.0;
          {
            NoGradGuard no_grad;
            sampled_loss =
                loss_(model_.forward(batch.inputs), batch.targets).item();
          }
          model_.train();
          const double size_cost =
              static_cast<double>(active_params(mixed_layers_)) / size_norm;
          const double reward =
              -(sampled_loss + options_.lambda_size * size_cost);
          if (!baseline_ready) {
            reward_baseline = reward;
            baseline_ready = true;
          }
          const double advantage = reward - reward_baseline;
          reward_baseline = 0.9 * reward_baseline + 0.1 * reward;
          for (MixedConv1d* layer : mixed_layers_) {
            layer->reinforce_update(advantage, options_.lr_alpha);
          }
        }
      }
      // Convergence check: the search is done only when the validation
      // loss of the argmax architecture has stopped improving AND the
      // argmax itself has been stable — candidates each receive ~1/N of
      // the weight updates, so the winning path keeps changing for many
      // epochs (the cost the paper measures in Fig. 5).
      activate_best(mixed_layers_);
      std::vector<index_t> argmax;
      argmax.reserve(mixed_layers_.size());
      for (MixedConv1d* layer : mixed_layers_) {
        argmax.push_back(layer->active());
      }
      const double vl = core::evaluate_loss(model_, loss_, val);
      ++result.search_epochs;
      if (options_.verbose) {
        std::printf("  [proxyless] epoch %3d  best-arch val %.4f\n", epoch,
                    vl);
      }
      stopping.observe(vl, model_);
      if (argmax == last_argmax) {
        ++stable_epochs;
      } else {
        stable_epochs = 0;
        last_argmax = std::move(argmax);
      }
      if (epoch >= options_.warmup_epochs && stopping.should_stop() &&
          stable_epochs >= options_.patience) {
        break;
      }
    }
    stopping.restore_best(model_);
    result.search_seconds = seconds_since(start);
  }

  // ---- Finalize: fine-tune the argmax architecture. -----------------------
  {
    activate_best(mixed_layers_);
    core::PlainTrainingOptions ft;
    ft.max_epochs = options_.finetune_epochs;
    ft.patience = options_.patience;
    ft.lr = options_.lr_weights;
    ft.verbose = options_.verbose;
    const auto ft_result = core::train_supervised(
        model_, loss_, train, val, model_.parameters(), ft);
    result.val_loss = ft_result.best_val_loss;
    result.finetune_seconds = ft_result.seconds;
  }

  result.dilations.reserve(mixed_layers_.size());
  for (MixedConv1d* layer : mixed_layers_) {
    result.dilations.push_back(layer->candidate_dilation(layer->active()));
  }
  result.searchable_params = active_params(mixed_layers_);
  result.total_seconds = seconds_since(overall_start);
  return result;
}

}  // namespace pit::nas
