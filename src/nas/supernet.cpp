#include "nas/supernet.hpp"

#include <cmath>

#include "core/gamma.hpp"
#include "tensor/error.hpp"

namespace pit::nas {

MixedConv1d::MixedConv1d(const models::TemporalConvSpec& spec,
                         RandomEngine& rng)
    : spec_(spec) {
  const index_t rf = spec.receptive_field();
  for (index_t d = 1; d <= core::max_dilation(rf); d *= 2) {
    candidates_.push_back(std::make_unique<nn::Conv1d>(
        spec.in_channels, spec.out_channels, models::alive_taps(rf, d),
        nn::Conv1dOptions{.dilation = d, .stride = spec.stride, .bias = true},
        rng));
    register_module("cand_d" + std::to_string(d), candidates_.back().get());
  }
  alphas_.assign(candidates_.size(), 0.0);  // uniform prior
}

Tensor MixedConv1d::forward(const Tensor& input) {
  return candidates_[static_cast<std::size_t>(active_)]->forward(input);
}

index_t MixedConv1d::num_candidates() const {
  return static_cast<index_t>(candidates_.size());
}

void MixedConv1d::set_active(index_t i) {
  PIT_CHECK(i >= 0 && i < num_candidates(),
            "MixedConv1d: candidate " << i << " out of range");
  active_ = i;
}

void MixedConv1d::sample_path(RandomEngine& rng) {
  const auto probs = probabilities();
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (u < acc) {
      active_ = static_cast<index_t>(i);
      return;
    }
  }
  active_ = num_candidates() - 1;
}

index_t MixedConv1d::best_candidate() const {
  index_t best = 0;
  for (index_t i = 1; i < num_candidates(); ++i) {
    if (alphas_[static_cast<std::size_t>(i)] >
        alphas_[static_cast<std::size_t>(best)]) {
      best = i;
    }
  }
  return best;
}

index_t MixedConv1d::candidate_dilation(index_t i) const {
  PIT_CHECK(i >= 0 && i < num_candidates(), "candidate_dilation: range");
  return candidates_[static_cast<std::size_t>(i)]->dilation();
}

index_t MixedConv1d::candidate_params(index_t i) const {
  PIT_CHECK(i >= 0 && i < num_candidates(), "candidate_params: range");
  return candidates_[static_cast<std::size_t>(i)]->num_params();
}

const nn::Conv1d& MixedConv1d::candidate(index_t i) const {
  PIT_CHECK(i >= 0 && i < num_candidates(), "candidate: range");
  return *candidates_[static_cast<std::size_t>(i)];
}

std::vector<double> MixedConv1d::probabilities() const {
  double max_alpha = alphas_[0];
  for (const double a : alphas_) {
    max_alpha = std::max(max_alpha, a);
  }
  std::vector<double> probs(alphas_.size());
  double z = 0.0;
  for (std::size_t i = 0; i < alphas_.size(); ++i) {
    probs[i] = std::exp(alphas_[i] - max_alpha);
    z += probs[i];
  }
  for (double& p : probs) {
    p /= z;
  }
  return probs;
}

void MixedConv1d::reinforce_update(double advantage, double lr) {
  // d log p(active) / d alpha_i = 1{i == active} - p_i.
  const auto probs = probabilities();
  for (std::size_t i = 0; i < alphas_.size(); ++i) {
    const double indicator =
        static_cast<index_t>(i) == active_ ? 1.0 : 0.0;
    alphas_[i] += lr * advantage * (indicator - probs[i]);
  }
}

models::ConvFactory mixed_conv_factory(RandomEngine& rng,
                                       std::vector<MixedConv1d*>& out_layers) {
  return [&rng, &out_layers](const models::TemporalConvSpec& spec) {
    auto layer = std::make_unique<MixedConv1d>(spec, rng);
    out_layers.push_back(layer.get());
    return layer;
  };
}

std::vector<MixedConv1d*> collect_mixed_layers(
    const std::vector<nn::Module*>& temporal_convs) {
  std::vector<MixedConv1d*> out;
  for (nn::Module* m : temporal_convs) {
    if (auto* mixed = dynamic_cast<MixedConv1d*>(m)) {
      out.push_back(mixed);
    }
  }
  return out;
}

double search_space_size(const std::vector<MixedConv1d*>& layers) {
  double size = 1.0;
  for (const MixedConv1d* layer : layers) {
    PIT_CHECK(layer != nullptr, "search_space_size: null layer");
    size *= static_cast<double>(layer->num_candidates());
  }
  return size;
}

}  // namespace pit::nas
