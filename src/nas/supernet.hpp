// ProxylessNAS-style supernet layer for dilation search.
//
// The paper's baseline (Table II / Fig. 5) adapts ProxylessNAS by manually
// enumerating one candidate conv per power-of-two dilation for every layer,
// keeping Cin/Cout fixed so the search space matches PIT's exactly. Each
// MixedConv1d holds those candidates with independent weights plus a vector
// of architecture parameters alpha; a single sampled path is active per
// batch (the trick that keeps ProxylessNAS memory-feasible but — as the
// paper measures — makes its search slow, since every candidate only
// receives a fraction of the weight updates).
#pragma once

#include <memory>
#include <vector>

#include "models/tcn_common.hpp"
#include "nn/conv1d.hpp"
#include "nn/module.hpp"

namespace pit::nas {

class MixedConv1d : public nn::Module {
 public:
  /// Candidates cover d in {1, 2, 4, ..., max_dilation(rf)} over the
  /// spec's seed receptive field, each with alive-tap kernels.
  MixedConv1d(const models::TemporalConvSpec& spec, RandomEngine& rng);

  /// Runs the currently active candidate only.
  Tensor forward(const Tensor& input) override;

  index_t num_candidates() const;
  index_t active() const { return active_; }
  void set_active(index_t i);
  /// Samples the active candidate from softmax(alpha).
  void sample_path(RandomEngine& rng);
  /// Index of the most probable candidate.
  index_t best_candidate() const;

  index_t candidate_dilation(index_t i) const;
  index_t candidate_params(index_t i) const;
  const nn::Conv1d& candidate(index_t i) const;

  std::vector<double> probabilities() const;
  /// REINFORCE ascent step on log p(sampled path) scaled by `advantage`.
  void reinforce_update(double advantage, double lr);

  const models::TemporalConvSpec& spec() const { return spec_; }

 private:
  models::TemporalConvSpec spec_;
  std::vector<std::unique_ptr<nn::Conv1d>> candidates_;
  std::vector<double> alphas_;
  index_t active_ = 0;
};

/// ConvFactory adapter building MixedConv1d supernet layers and recording
/// them (non-owning) in `out_layers`.
models::ConvFactory mixed_conv_factory(RandomEngine& rng,
                                       std::vector<MixedConv1d*>& out_layers);

/// The MixedConv1d layers among a model's temporal convs, in order.
std::vector<MixedConv1d*> collect_mixed_layers(
    const std::vector<nn::Module*>& temporal_convs);

/// Size of the search space: product over layers of candidate counts.
double search_space_size(const std::vector<MixedConv1d*>& layers);

}  // namespace pit::nas
