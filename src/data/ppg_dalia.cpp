#include "data/ppg_dalia.hpp"

#include <array>
#include <cmath>
#include <numbers>
#include <vector>

#include "tensor/error.hpp"

namespace pit::data {

PpgDaliaDataset::PpgDaliaDataset(const PpgDaliaOptions& options)
    : options_(options) {
  PIT_CHECK(options.num_windows >= 1, "PpgDalia: num_windows >= 1");
  PIT_CHECK(options.window_len >= 8, "PpgDalia: window_len >= 8");
  PIT_CHECK(options.sample_rate_hz > 0.0, "PpgDalia: positive sample rate");
  PIT_CHECK(options.hr_min_bpm > 0.0 && options.hr_max_bpm > options.hr_min_bpm,
            "PpgDalia: invalid HR range");
  PIT_CHECK(options.motion_prob >= 0.0 && options.motion_prob <= 1.0,
            "PpgDalia: motion_prob in [0,1]");
  PIT_CHECK(options.noise_std >= 0.0, "PpgDalia: noise_std >= 0");

  RandomEngine rng(options.seed);
  windows_.reserve(static_cast<std::size_t>(options.num_windows));
  labels_.reserve(static_cast<std::size_t>(options.num_windows));

  const index_t t_len = options.window_len;
  const double dt = 1.0 / options.sample_rate_hz;

  // Session-level state: HR random walk and a running PPG phase so waves
  // are continuous across consecutive windows (like a real recording).
  double hr = rng.uniform(options.hr_min_bpm, options.hr_max_bpm);
  double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);

  for (index_t w = 0; w < options.num_windows; ++w) {
    // HR drifts slowly between windows; bounce off the range limits.
    hr += rng.normal(0.0, 3.0);
    if (hr < options.hr_min_bpm) {
      hr = 2.0 * options.hr_min_bpm - hr;
    }
    if (hr > options.hr_max_bpm) {
      hr = 2.0 * options.hr_max_bpm - hr;
    }

    Tensor window = Tensor::zeros(Shape{kNumChannels, t_len});
    float* wd = window.data();

    // ---- Accelerometer: quiet gravity baseline + optional motion burst.
    const bool has_motion = rng.bernoulli(options.motion_prob);
    const index_t burst_start = has_motion ? rng.randint(t_len / 2) : 0;
    const index_t burst_len =
        has_motion ? t_len / 4 + rng.randint(t_len / 4) : 0;
    const double burst_freq = rng.uniform(1.0, 3.0);  // arm-swing Hz
    std::array<double, 3> axis_gain = {rng.uniform(0.5, 1.5),
                                       rng.uniform(0.5, 1.5),
                                       rng.uniform(0.5, 1.5)};
    std::vector<double> motion_envelope(static_cast<std::size_t>(t_len), 0.0);
    for (index_t t = 0; t < t_len; ++t) {
      double env = 0.0;
      if (has_motion && t >= burst_start && t < burst_start + burst_len) {
        // Raised-cosine envelope over the burst.
        const double u =
            static_cast<double>(t - burst_start) / static_cast<double>(burst_len);
        env = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * u));
      }
      motion_envelope[static_cast<std::size_t>(t)] = env;
      const double swing =
          std::sin(2.0 * std::numbers::pi * burst_freq * t * dt);
      for (int axis = 0; axis < 3; ++axis) {
        const double gravity = axis == 2 ? 1.0 : 0.0;  // z holds gravity
        const double value = gravity + axis_gain[static_cast<std::size_t>(axis)] *
                                           env * swing +
                             rng.normal(0.0, 0.02);
        wd[(1 + axis) * t_len + t] = static_cast<float>(value);
      }
    }

    // ---- PPG: harmonic pulse train at the HR fundamental + wander +
    //      motion artefact proportional to the accel envelope + noise.
    const double f0 = hr / 60.0;  // Hz
    const double wander_freq = rng.uniform(0.05, 0.3);
    const double wander_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double artefact_gain = rng.uniform(0.5, 1.2);
    for (index_t t = 0; t < t_len; ++t) {
      phase += 2.0 * std::numbers::pi * f0 * dt;
      const double pulse = std::sin(phase) + 0.5 * std::sin(2.0 * phase) +
                           0.2 * std::sin(3.0 * phase);
      const double wander =
          0.3 * std::sin(2.0 * std::numbers::pi * wander_freq * t * dt +
                         wander_phase);
      const double artefact = artefact_gain *
                              motion_envelope[static_cast<std::size_t>(t)] *
                              std::sin(2.0 * std::numbers::pi * burst_freq * t * dt);
      const double value =
          pulse + wander + artefact + rng.normal(0.0, options.noise_std);
      wd[0 * t_len + t] = static_cast<float>(value);
    }

    windows_.push_back(std::move(window));
    labels_.push_back(static_cast<float>(hr));
  }
}

index_t PpgDaliaDataset::size() const {
  return static_cast<index_t>(windows_.size());
}

Example PpgDaliaDataset::get(index_t i) const {
  PIT_CHECK(i >= 0 && i < size(),
            "PpgDalia::get(" << i << ") out of range, size " << size());
  Tensor target = Tensor::zeros(Shape{1});
  target.data()[0] = labels_[static_cast<std::size_t>(i)];
  return {windows_[static_cast<std::size_t>(i)].clone(), std::move(target)};
}

double PpgDaliaDataset::mean_hr() const {
  double acc = 0.0;
  for (const float v : labels_) {
    acc += v;
  }
  return labels_.empty() ? 0.0 : acc / static_cast<double>(labels_.size());
}

}  // namespace pit::data
