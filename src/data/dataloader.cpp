#include "data/dataloader.hpp"

#include <algorithm>
#include <numeric>

#include "tensor/error.hpp"

namespace pit::data {

Tensor stack_examples(const std::vector<Tensor>& items) {
  PIT_CHECK(!items.empty(), "stack_examples: empty batch");
  const Shape& item_shape = items[0].shape();
  std::vector<index_t> dims;
  dims.push_back(static_cast<index_t>(items.size()));
  for (const index_t d : item_shape.dims()) {
    dims.push_back(d);
  }
  // Single copy pass into an uninitialized buffer: every element is written
  // exactly once, so the zero-fill a zeros() allocation would do is pure
  // waste on the hot path of every training epoch.
  FloatBuffer data;
  data.reserve(static_cast<std::size_t>(items.size()) *
               static_cast<std::size_t>(item_shape.numel()));
  for (std::size_t i = 0; i < items.size(); ++i) {
    PIT_CHECK(items[i].shape() == item_shape,
              "stack_examples: shape mismatch at item " << i);
    const auto view = items[i].span();
    data.insert(data.end(), view.begin(), view.end());
  }
  return Tensor::from_buffer(std::move(data), Shape(dims));
}

DataLoader::DataLoader(const Dataset& dataset, index_t batch_size,
                       bool shuffle, std::uint64_t seed)
    : dataset_(dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed) {
  PIT_CHECK(batch_size >= 1, "DataLoader: batch_size must be >= 1");
  PIT_CHECK(dataset.size() >= 1, "DataLoader: empty dataset");
  order_.resize(static_cast<std::size_t>(dataset.size()));
  std::iota(order_.begin(), order_.end(), index_t{0});
  if (shuffle_) {
    reshuffle();
  }
}

index_t DataLoader::num_batches() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

Batch DataLoader::batch(index_t b) const {
  PIT_CHECK(b >= 0 && b < num_batches(),
            "DataLoader::batch(" << b << ") out of range, " << num_batches()
                                 << " batches");
  const index_t first = b * batch_size_;
  const index_t last = std::min(first + batch_size_, dataset_.size());
  std::vector<Tensor> inputs;
  std::vector<Tensor> targets;
  inputs.reserve(static_cast<std::size_t>(last - first));
  targets.reserve(static_cast<std::size_t>(last - first));
  for (index_t i = first; i < last; ++i) {
    Example ex = dataset_.get(order_[static_cast<std::size_t>(i)]);
    inputs.push_back(std::move(ex.input));
    targets.push_back(std::move(ex.target));
  }
  return {stack_examples(inputs), stack_examples(targets)};
}

void DataLoader::reshuffle() {
  if (!shuffle_) {
    return;
  }
  // Fisher-Yates with our deterministic engine.
  for (index_t i = static_cast<index_t>(order_.size()) - 1; i > 0; --i) {
    const index_t j = rng_.randint(i + 1);
    std::swap(order_[static_cast<std::size_t>(i)],
              order_[static_cast<std::size_t>(j)]);
  }
}

}  // namespace pit::data
