// Dataset abstractions.
#pragma once

#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace pit::data {

/// One supervised example: input and target tensors (without batch dim).
struct Example {
  Tensor input;
  Tensor target;
};

/// Abstract random-access dataset.
class Dataset {
 public:
  virtual ~Dataset() = default;
  virtual index_t size() const = 0;
  /// Returns example `i` (0 <= i < size()).
  virtual Example get(index_t i) const = 0;
};

/// In-memory dataset over pre-built example tensors.
class TensorDataset : public Dataset {
 public:
  TensorDataset(std::vector<Tensor> inputs, std::vector<Tensor> targets);

  index_t size() const override;
  Example get(index_t i) const override;

 private:
  std::vector<Tensor> inputs_;
  std::vector<Tensor> targets_;
};

/// View of a contiguous index range of another dataset (train/val splits).
class SubsetDataset : public Dataset {
 public:
  /// [first, first + count) must lie within `base`'s range; `base` must
  /// outlive the subset.
  SubsetDataset(const Dataset& base, index_t first, index_t count);

  index_t size() const override { return count_; }
  Example get(index_t i) const override;

 private:
  const Dataset& base_;
  index_t first_;
  index_t count_;
};

/// Splits a dataset into train / validation / test index views with the
/// given fractions (test gets the remainder).
struct DatasetSplits {
  SubsetDataset train;
  SubsetDataset val;
  SubsetDataset test;
};
DatasetSplits split_dataset(const Dataset& base, double train_fraction,
                            double val_fraction);

}  // namespace pit::data
