#include "data/dataset.hpp"

#include "tensor/error.hpp"

namespace pit::data {

TensorDataset::TensorDataset(std::vector<Tensor> inputs,
                             std::vector<Tensor> targets)
    : inputs_(std::move(inputs)), targets_(std::move(targets)) {
  PIT_CHECK(inputs_.size() == targets_.size(),
            "TensorDataset: " << inputs_.size() << " inputs vs "
                              << targets_.size() << " targets");
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    PIT_CHECK(inputs_[i].defined() && targets_[i].defined(),
              "TensorDataset: undefined tensor at index " << i);
    PIT_CHECK(inputs_[i].shape() == inputs_[0].shape(),
              "TensorDataset: inconsistent input shape at index " << i);
    PIT_CHECK(targets_[i].shape() == targets_[0].shape(),
              "TensorDataset: inconsistent target shape at index " << i);
  }
}

index_t TensorDataset::size() const {
  return static_cast<index_t>(inputs_.size());
}

Example TensorDataset::get(index_t i) const {
  PIT_CHECK(i >= 0 && i < size(),
            "TensorDataset::get(" << i << ") out of range, size " << size());
  return {inputs_[static_cast<std::size_t>(i)],
          targets_[static_cast<std::size_t>(i)]};
}

SubsetDataset::SubsetDataset(const Dataset& base, index_t first, index_t count)
    : base_(base), first_(first), count_(count) {
  PIT_CHECK(first >= 0 && count >= 0 && first + count <= base.size(),
            "SubsetDataset: range [" << first << ", " << first + count
                                     << ") exceeds base size " << base.size());
}

Example SubsetDataset::get(index_t i) const {
  PIT_CHECK(i >= 0 && i < count_,
            "SubsetDataset::get(" << i << ") out of range, size " << count_);
  return base_.get(first_ + i);
}

DatasetSplits split_dataset(const Dataset& base, double train_fraction,
                            double val_fraction) {
  PIT_CHECK(train_fraction > 0.0 && val_fraction >= 0.0 &&
                train_fraction + val_fraction <= 1.0,
            "split_dataset: invalid fractions " << train_fraction << ", "
                                                << val_fraction);
  const index_t n = base.size();
  const auto n_train = static_cast<index_t>(n * train_fraction);
  const auto n_val = static_cast<index_t>(n * val_fraction);
  const index_t n_test = n - n_train - n_val;
  return {SubsetDataset(base, 0, n_train),
          SubsetDataset(base, n_train, n_val),
          SubsetDataset(base, n_train + n_val, n_test)};
}

}  // namespace pit::data
