// Synthetic stand-in for the PPG-Dalia heart-rate-estimation dataset.
//
// The real dataset is 37.5 h of wrist PPG + 3-axis accelerometer from 15
// subjects with ECG-derived heart-rate labels; the task is regressing the
// window's heart rate (MAE in BPM). This generator reproduces the task
// shape: each window holds a quasi-periodic PPG waveform whose fundamental
// frequency *is* the label, contaminated by baseline wander, sensor noise
// and motion artefacts that are correlated with the synthetic accelerometer
// channels — the same reason the real task needs the accelerometer. HR
// evolves as a bounded random walk across windows, like a recording session.
#pragma once

#include "data/dataset.hpp"
#include "tensor/random.hpp"

namespace pit::data {

struct PpgDaliaOptions {
  index_t num_windows = 512;
  /// Samples per window; the paper's setup is 8 s at 32 Hz = 256.
  index_t window_len = 256;
  double sample_rate_hz = 32.0;
  /// Heart-rate label range (BPM).
  double hr_min_bpm = 55.0;
  double hr_max_bpm = 185.0;
  /// Probability that a window contains a motion episode.
  double motion_prob = 0.35;
  /// Standard deviation of the additive Gaussian sensor noise.
  double noise_std = 0.10;
  std::uint64_t seed = 1;
};

/// 4-channel (PPG, accel x/y/z) windows with scalar HR targets (BPM).
/// Example input: (4, window_len); target: (1).
class PpgDaliaDataset : public Dataset {
 public:
  static constexpr index_t kNumChannels = 4;

  explicit PpgDaliaDataset(const PpgDaliaOptions& options);

  index_t size() const override;
  Example get(index_t i) const override;

  const PpgDaliaOptions& options() const { return options_; }

  /// Mean of all HR labels (useful to sanity-check regressors).
  double mean_hr() const;

 private:
  PpgDaliaOptions options_;
  std::vector<Tensor> windows_;  // (4, window_len)
  std::vector<float> labels_;    // BPM
};

}  // namespace pit::data
