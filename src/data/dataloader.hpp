// Mini-batch assembly with optional deterministic shuffling.
#pragma once

#include <vector>

#include "data/dataset.hpp"
#include "tensor/random.hpp"

namespace pit::data {

/// One mini-batch: inputs stacked along a new leading batch dimension,
/// targets likewise.
struct Batch {
  Tensor inputs;
  Tensor targets;
};

/// Batches a dataset. Iteration pattern:
///
///   for (int epoch = 0; ...; ++epoch) {
///     loader.reshuffle();                     // no-op if shuffle disabled
///     for (index_t b = 0; b < loader.num_batches(); ++b) {
///       Batch batch = loader.batch(b);
///       ...
///     }
///   }
///
/// The last batch may be smaller than batch_size (never dropped).
class DataLoader {
 public:
  /// `dataset` must outlive the loader.
  DataLoader(const Dataset& dataset, index_t batch_size, bool shuffle,
             std::uint64_t seed = 0);

  index_t num_batches() const;
  Batch batch(index_t b) const;
  /// Draws a fresh example order (when shuffling is enabled).
  void reshuffle();

  index_t batch_size() const { return batch_size_; }
  index_t dataset_size() const { return dataset_.size(); }

 private:
  const Dataset& dataset_;
  index_t batch_size_;
  bool shuffle_;
  RandomEngine rng_;
  std::vector<index_t> order_;
};

/// Stacks per-example tensors along a new leading dimension.
Tensor stack_examples(const std::vector<Tensor>& items);

}  // namespace pit::data
