// Synthetic stand-in for the Nottingham polyphonic-music dataset.
//
// The real corpus is 1200 British/American folk tunes rendered as 88-key
// piano rolls; the task is next-frame prediction scored by frame-level NLL
// (sum of per-key binary cross-entropies). This generator reproduces the
// *statistical shape* that matters to PIT: multi-scale temporal structure —
// chords drawn from a Markov progression change every several frames (slow
// time scale) while a scale-constrained melody random-walks every frame or
// two (fast time scale). A TCN therefore benefits from a large receptive
// field, and dilation lets it get one cheaply — the trade-off the paper's
// Fig. 4 (top) explores.
#pragma once

#include "data/dataset.hpp"
#include "tensor/random.hpp"

namespace pit::data {

struct NottinghamOptions {
  index_t num_sequences = 256;
  /// Frames per generated tune; the usable example length is seq_len - 1
  /// (inputs are frames [0, T-1), targets frames [1, T)).
  index_t seq_len = 65;
  /// Frames a chord persists before the progression advances.
  index_t chord_hold_frames = 8;
  /// Probability that the melody voice moves at each frame.
  double melody_move_prob = 0.6;
  /// Probability of a melody rest frame.
  double rest_prob = 0.05;
  std::uint64_t seed = 1;
};

/// 88-key piano-roll next-frame-prediction dataset.
/// Example input: (88, seq_len-1) binary; target: (88, seq_len-1) binary
/// (the input shifted one frame into the future).
class NottinghamDataset : public Dataset {
 public:
  static constexpr index_t kNumKeys = 88;  // MIDI 21..108

  explicit NottinghamDataset(const NottinghamOptions& options);

  index_t size() const override;
  Example get(index_t i) const override;

  const NottinghamOptions& options() const { return options_; }

  /// Fraction of active cells in all piano rolls (sparsity diagnostic).
  double active_fraction() const;

 private:
  NottinghamOptions options_;
  std::vector<Tensor> rolls_;  // (88, seq_len) binary, one per tune
};

}  // namespace pit::data
