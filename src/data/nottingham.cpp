#include "data/nottingham.hpp"

#include <array>

#include "tensor/error.hpp"

namespace pit::data {

namespace {

/// Major-scale intervals (semitones from the tonic).
constexpr std::array<int, 7> kMajorScale = {0, 2, 4, 5, 7, 9, 11};

/// Folk-style progression over scale degrees I, IV, V, vi: row = current
/// chord, column = next chord. Rows sum to 1.
constexpr std::array<std::array<double, 4>, 4> kChordTransitions = {{
    {0.30, 0.30, 0.25, 0.15},  // from I
    {0.35, 0.15, 0.40, 0.10},  // from IV
    {0.55, 0.10, 0.15, 0.20},  // from V
    {0.30, 0.30, 0.25, 0.15},  // from vi
}};

/// Chord root scale-degree (0-based) for I, IV, V, vi.
constexpr std::array<int, 4> kChordRootDegree = {0, 3, 4, 5};

int sample_next_chord(int current, RandomEngine& rng) {
  const double u = rng.uniform();
  double acc = 0.0;
  for (int next = 0; next < 4; ++next) {
    acc += kChordTransitions[static_cast<std::size_t>(current)]
                            [static_cast<std::size_t>(next)];
    if (u < acc) {
      return next;
    }
  }
  return 3;
}

/// MIDI note for scale degree `deg` (can exceed 6 -> wraps an octave up)
/// in the key rooted at `key_root` (MIDI), or -1 if outside the 88 keys.
int degree_to_key_index(int key_root, int deg, int octave_shift) {
  const int octaves = deg / 7 + octave_shift;
  const int within = deg % 7;
  const int midi = key_root + 12 * octaves +
                   kMajorScale[static_cast<std::size_t>(within)];
  const int key = midi - 21;  // piano key index
  return (key >= 0 && key < 88) ? key : -1;
}

}  // namespace

NottinghamDataset::NottinghamDataset(const NottinghamOptions& options)
    : options_(options) {
  PIT_CHECK(options.num_sequences >= 1, "Nottingham: num_sequences >= 1");
  PIT_CHECK(options.seq_len >= 2, "Nottingham: seq_len must be >= 2");
  PIT_CHECK(options.chord_hold_frames >= 1,
            "Nottingham: chord_hold_frames must be >= 1");
  PIT_CHECK(options.melody_move_prob >= 0.0 && options.melody_move_prob <= 1.0,
            "Nottingham: melody_move_prob in [0,1]");
  PIT_CHECK(options.rest_prob >= 0.0 && options.rest_prob < 1.0,
            "Nottingham: rest_prob in [0,1)");
  RandomEngine rng(options.seed);
  rolls_.reserve(static_cast<std::size_t>(options.num_sequences));

  for (index_t s = 0; s < options.num_sequences; ++s) {
    Tensor roll = Tensor::zeros(Shape{kNumKeys, options.seq_len});
    float* rd = roll.data();
    const index_t t_len = options.seq_len;

    // Key: tonic in MIDI 48..59 (C3..B3 region).
    const int key_root = 48 + static_cast<int>(rng.randint(12));
    int chord = 0;                                     // start on I
    int melody_deg = 7 + static_cast<int>(rng.randint(7));  // one octave up

    for (index_t t = 0; t < t_len; ++t) {
      if (t % options.chord_hold_frames == 0 && t > 0) {
        chord = sample_next_chord(chord, rng);
      }
      // Chord voicing: root + third + fifth, plus a bass root an octave down.
      const int root_deg = kChordRootDegree[static_cast<std::size_t>(chord)];
      for (const int offset : {0, 2, 4}) {
        const int key = degree_to_key_index(key_root, root_deg + offset, 0);
        if (key >= 0) {
          rd[key * t_len + t] = 1.0F;
        }
      }
      const int bass = degree_to_key_index(key_root, root_deg, -1);
      if (bass >= 0) {
        rd[bass * t_len + t] = 1.0F;
      }

      // Melody voice: scale-constrained random walk above the chords.
      if (rng.bernoulli(options.melody_move_prob)) {
        melody_deg += static_cast<int>(rng.randint(5)) - 2;  // -2..+2
        melody_deg = std::max(7, std::min(20, melody_deg));
      }
      if (!rng.bernoulli(options.rest_prob)) {
        const int key = degree_to_key_index(key_root, melody_deg, 0);
        if (key >= 0) {
          rd[key * t_len + t] = 1.0F;
        }
      }
    }
    rolls_.push_back(std::move(roll));
  }
}

index_t NottinghamDataset::size() const {
  return static_cast<index_t>(rolls_.size());
}

Example NottinghamDataset::get(index_t i) const {
  PIT_CHECK(i >= 0 && i < size(),
            "Nottingham::get(" << i << ") out of range, size " << size());
  const Tensor& roll = rolls_[static_cast<std::size_t>(i)];
  const index_t t_len = options_.seq_len;
  const index_t t_ex = t_len - 1;
  Tensor input = Tensor::zeros(Shape{kNumKeys, t_ex});
  Tensor target = Tensor::zeros(Shape{kNumKeys, t_ex});
  const float* rd = roll.data();
  for (index_t k = 0; k < kNumKeys; ++k) {
    for (index_t t = 0; t < t_ex; ++t) {
      input.data()[k * t_ex + t] = rd[k * t_len + t];
      target.data()[k * t_ex + t] = rd[k * t_len + t + 1];
    }
  }
  return {std::move(input), std::move(target)};
}

double NottinghamDataset::active_fraction() const {
  double active = 0.0;
  double total = 0.0;
  for (const Tensor& roll : rolls_) {
    for (const float v : roll.span()) {
      active += v;
    }
    total += static_cast<double>(roll.numel());
  }
  return total > 0.0 ? active / total : 0.0;
}

}  // namespace pit::data
