// Channel-masking extension (paper Sec. III-C).
//
// "PIT can be easily integrated with other DMaskingNAS techniques that
// affect different hyper-parameters, e.g. [MorphNet] to tune the number of
// channels in each layer, simply by adding further regularization terms and
// masking parameters." This module provides that integration: a
// ChannelGate multiplies each channel of a (N, C, T) feature map with a
// binarized trainable gamma (straight-through estimator, like the time
// gammas), and channel_regularizer() adds the Lasso term that prunes them.
// Stacking a gate after a PITConv1d searches channels and dilation jointly.
#pragma once

#include <vector>

#include "nn/module.hpp"
#include "tensor/random.hpp"

namespace pit::core {

/// Differentiable per-channel on/off gate over (N, C, T) or (N, C) inputs.
class ChannelGate : public nn::Module {
 public:
  explicit ChannelGate(index_t channels, float binarize_threshold = 0.5F);

  Tensor forward(const Tensor& input) override;

  index_t channels() const { return channels_; }
  /// Trainable float gammas (shape (C)), initialized to 1.
  Tensor gamma_values() const { return gamma_; }
  /// Channels whose binarized gamma is 1.
  index_t alive_channels() const;
  std::vector<int> binary_snapshot() const;

  /// Clamps gammas to [0, 1] (call after each optimizer step).
  void clamp_values();
  /// Stops gradient flow; the gate becomes a constant mask.
  void freeze();
  bool frozen() const { return frozen_; }

 private:
  index_t channels_;
  float threshold_;
  Tensor gamma_;
  bool frozen_ = false;
};

/// Lasso penalty over the gates' float gammas. `cost_per_channel[i]` is the
/// parameter count one channel of gate i controls (its filter slice plus
/// everything downstream that consumes it), mirroring Eq. 6's Cin*Cout
/// weighting for the time axis.
Tensor channel_regularizer(const std::vector<ChannelGate*>& gates,
                           double lambda,
                           const std::vector<index_t>& cost_per_channel);

}  // namespace pit::core
