#include "core/trainer.hpp"

#include <chrono>
#include <cstdio>
#include <unordered_set>

#include "nn/optim.hpp"
#include "nn/schedule.hpp"
#include "tensor/error.hpp"
#include "tensor/ops.hpp"

namespace pit::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One optimization epoch; returns the average (possibly regularized)
/// training loss. `gamma_opt` may be null (phases 1 and 3).
double run_epoch(nn::Module& model, const LossFn& loss,
                 data::DataLoader& train, nn::Optimizer& weight_opt,
                 nn::Optimizer* gamma_opt,
                 const std::vector<PITConv1d*>& pit_layers,
                 const PitTrainerOptions& options,
                 const std::vector<index_t>& t_out_per_layer,
                 bool with_regularizer) {
  model.train();
  train.reshuffle();
  double total = 0.0;
  index_t examples = 0;
  for (index_t b = 0; b < train.num_batches(); ++b) {
    data::Batch batch = train.batch(b);
    model.zero_grad();
    Tensor pred = model.forward(batch.inputs);
    Tensor task = loss(pred, batch.targets);
    Tensor objective = task;
    if (with_regularizer) {
      Tensor reg = options.cost == CostKind::kSize
                       ? size_regularizer(pit_layers, options.lambda)
                       : flops_regularizer(pit_layers, options.lambda,
                                           t_out_per_layer);
      objective = add(task, reg);
    }
    objective.backward();
    weight_opt.step();
    if (gamma_opt != nullptr) {
      gamma_opt->step();
      for (PITConv1d* layer : pit_layers) {
        layer->gamma().clamp_values();  // BinaryConnect housekeeping
      }
    }
    const index_t n = batch.inputs.dim(0);
    total += static_cast<double>(task.item()) * static_cast<double>(n);
    examples += n;
  }
  return examples > 0 ? total / static_cast<double>(examples) : 0.0;
}

std::vector<index_t> current_dilations(
    const std::vector<PITConv1d*>& pit_layers) {
  std::vector<index_t> out;
  out.reserve(pit_layers.size());
  for (const PITConv1d* layer : pit_layers) {
    out.push_back(layer->current_dilation());
  }
  return out;
}

void log_epoch(const PitTrainerOptions& options, const EpochStats& stats) {
  if (!options.verbose) {
    return;
  }
  const char* phase = stats.phase == Phase::kWarmup    ? "warmup"
                      : stats.phase == Phase::kPruning ? "prune "
                                                       : "finetune";
  std::printf("  [%s] epoch %3d  train %.4f  val %.4f  params %lld\n", phase,
              stats.epoch, stats.train_loss, stats.val_loss,
              static_cast<long long>(stats.searchable_params));
}

}  // namespace

double evaluate_loss(nn::Module& model, const LossFn& loss,
                     data::DataLoader& loader) {
  const bool was_training = model.is_training();
  model.eval();
  double total = 0.0;
  index_t examples = 0;
  {
    NoGradGuard no_grad;
    for (index_t b = 0; b < loader.num_batches(); ++b) {
      data::Batch batch = loader.batch(b);
      Tensor pred = model.forward(batch.inputs);
      const index_t n = batch.inputs.dim(0);
      total += static_cast<double>(loss(pred, batch.targets).item()) *
               static_cast<double>(n);
      examples += n;
    }
  }
  if (was_training) {
    model.train();
  }
  return examples > 0 ? total / static_cast<double>(examples) : 0.0;
}

PitTrainer::PitTrainer(nn::Module& model, std::vector<PITConv1d*> pit_layers,
                       LossFn loss, const PitTrainerOptions& options,
                       std::vector<index_t> t_out_per_layer)
    : model_(model),
      pit_layers_(std::move(pit_layers)),
      loss_(std::move(loss)),
      options_(options),
      t_out_per_layer_(std::move(t_out_per_layer)) {
  PIT_CHECK(!pit_layers_.empty(), "PitTrainer: no PIT layers to optimize");
  PIT_CHECK(options.lambda >= 0.0, "PitTrainer: lambda must be >= 0");
  PIT_CHECK(options.warmup_epochs >= 0 && options.max_prune_epochs >= 0 &&
                options.finetune_epochs >= 0,
            "PitTrainer: negative epoch budget");
  PIT_CHECK(options.patience >= 1, "PitTrainer: patience must be >= 1");
  if (options.cost == CostKind::kFlops) {
    PIT_CHECK(t_out_per_layer_.size() == pit_layers_.size(),
              "PitTrainer: FLOPs cost needs t_out per searchable layer");
  }
}

PitTrainingResult PitTrainer::run(data::DataLoader& train,
                                  data::DataLoader& val) {
  PitTrainingResult result;
  const auto overall_start = Clock::now();

  // Split parameters: gamma tensors get their own optimizer so phases can
  // enable/disable architecture updates independently of weight updates.
  std::unordered_set<const TensorImpl*> gamma_impls;
  std::vector<Tensor> gamma_params;
  for (PITConv1d* layer : pit_layers_) {
    if (layer->gamma().num_trainable() > 0) {
      gamma_params.push_back(layer->gamma().values());
      gamma_impls.insert(layer->gamma().values().impl().get());
    }
  }
  std::vector<Tensor> weight_params;
  for (const Tensor& p : model_.parameters()) {
    if (gamma_impls.find(p.impl().get()) == gamma_impls.end()) {
      weight_params.push_back(p);
    }
  }

  nn::Adam weight_opt(weight_params, options_.lr_weights);
  int global_epoch = 0;
  auto record = [&](Phase phase, double train_loss, double val_loss) {
    EpochStats stats;
    stats.phase = phase;
    stats.epoch = global_epoch++;
    stats.train_loss = train_loss;
    stats.val_loss = val_loss;
    stats.dilations = current_dilations(pit_layers_);
    stats.searchable_params = total_effective_params(pit_layers_);
    log_epoch(options_, stats);
    result.history.push_back(std::move(stats));
  };

  // ---- Phase 1: warmup (weights only, task loss only). -------------------
  {
    const auto start = Clock::now();
    for (int e = 0; e < options_.warmup_epochs; ++e) {
      const double tl = run_epoch(model_, loss_, train, weight_opt, nullptr,
                                  pit_layers_, options_, t_out_per_layer_,
                                  /*with_regularizer=*/false);
      record(Phase::kWarmup, tl, evaluate_loss(model_, loss_, val));
    }
    result.warmup_seconds = seconds_since(start);
  }

  // ---- Phase 2: concurrent weight + gamma updates with L_PIT. ------------
  {
    const auto start = Clock::now();
    nn::Adam gamma_opt(gamma_params, options_.lr_gamma);
    nn::EarlyStopping stopping(options_.patience);
    for (int e = 0; e < options_.max_prune_epochs; ++e) {
      const double tl = run_epoch(model_, loss_, train, weight_opt,
                                  &gamma_opt, pit_layers_, options_,
                                  t_out_per_layer_, /*with_regularizer=*/true);
      const double vl = evaluate_loss(model_, loss_, val);
      record(Phase::kPruning, tl, vl);
      stopping.observe(vl, model_);
      if (stopping.should_stop()) {
        break;
      }
    }
    // The converged (pruned) state is kept as-is: restoring the
    // best-validation snapshot here would typically resurrect the
    // un-pruned gammas from the first epochs. Accuracy lost to pruning is
    // recovered by the fine-tuning phase, as in the paper's Algorithm 1.
    result.prune_seconds = seconds_since(start);
  }

  // ---- Phase 3: freeze binarized gammas, fine-tune weights. --------------
  {
    const auto start = Clock::now();
    for (PITConv1d* layer : pit_layers_) {
      layer->freeze_gamma();
    }
    nn::EarlyStopping stopping(options_.patience);
    stopping.observe(evaluate_loss(model_, loss_, val), model_);
    for (int e = 0; e < options_.finetune_epochs; ++e) {
      const double tl = run_epoch(model_, loss_, train, weight_opt, nullptr,
                                  pit_layers_, options_, t_out_per_layer_,
                                  /*with_regularizer=*/false);
      const double vl = evaluate_loss(model_, loss_, val);
      record(Phase::kFineTune, tl, vl);
      stopping.observe(vl, model_);
      if (stopping.should_stop()) {
        break;
      }
    }
    stopping.restore_best(model_);
    result.finetune_seconds = seconds_since(start);
    result.val_loss = stopping.best_metric();
  }

  result.dilations = current_dilations(pit_layers_);
  result.searchable_params = total_effective_params(pit_layers_);
  result.total_seconds = seconds_since(overall_start);
  return result;
}

PlainTrainingResult train_supervised(nn::Module& model, const LossFn& loss,
                                     data::DataLoader& train,
                                     data::DataLoader& val,
                                     std::vector<Tensor> params,
                                     const PlainTrainingOptions& options) {
  PIT_CHECK(options.max_epochs >= 1, "train_supervised: max_epochs >= 1");
  PIT_CHECK(options.patience >= 1, "train_supervised: patience >= 1");
  const auto start = Clock::now();
  nn::Adam opt(std::move(params), options.lr);
  nn::EarlyStopping stopping(options.patience);
  PlainTrainingResult result;
  for (int e = 0; e < options.max_epochs; ++e) {
    model.train();
    train.reshuffle();
    double total = 0.0;
    index_t examples = 0;
    for (index_t b = 0; b < train.num_batches(); ++b) {
      data::Batch batch = train.batch(b);
      model.zero_grad();
      Tensor objective = loss(model.forward(batch.inputs), batch.targets);
      objective.backward();
      opt.step();
      const index_t n = batch.inputs.dim(0);
      total += static_cast<double>(objective.item()) * static_cast<double>(n);
      examples += n;
    }
    const double vl = evaluate_loss(model, loss, val);
    ++result.epochs_run;
    if (options.verbose) {
      std::printf("  [plain] epoch %3d  train %.4f  val %.4f\n", e,
                  total / static_cast<double>(examples), vl);
    }
    stopping.observe(vl, model);
    if (stopping.should_stop()) {
      break;
    }
  }
  stopping.restore_best(model);
  result.best_val_loss = stopping.best_metric();
  result.seconds = seconds_since(start);
  return result;
}

}  // namespace pit::core
