// Trainable dilation knobs (the paper's gamma vectors, Sec. III-A).
//
// A temporal conv with maximum receptive field rf_max carries
// L = floor(log2(rf_max - 1)) + 1 gamma elements; gamma_0 is the constant 1
// and the remaining L-1 are trainable floats in [0, 1], binarized with a
// Heaviside step at 0.5 in forward passes (straight-through estimator in
// backward). Zeroing trailing gammas doubles the layer's dilation:
// all ones -> d = 1; gamma_{L-1} = 0 -> d = 2; ...; gamma_1 = 0 -> 2^(L-1).
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace pit::core {

/// L = floor(log2(rf_max - 1)) + 1 for rf_max >= 2; rf_max == 1 has a
/// single always-alive tap and no knobs (L = 1).
index_t num_gamma_levels(index_t rf_max);

/// Largest dilation reachable for the receptive field: 2^(L-1).
index_t max_dilation(index_t rf_max);

/// Dilation encoded by the binary gamma assignment (bits[j] is gamma_{j+1};
/// gamma_0 is implicit). d = 2^i for the smallest i with Gamma_i = 1,
/// where Gamma_i = gamma_0 * ... * gamma_{L-1-i} (paper Eq. 3).
index_t dilation_from_bits(const std::vector<int>& bits);

/// Binary gamma assignment that encodes dilation d (power of two,
/// d <= max_dilation(rf_max)): the canonical pattern with the trailing
/// log2(d) knobs at 0.
std::vector<int> bits_for_dilation(index_t d, index_t rf_max);

/// The trainable gamma vector attached to one PIT convolution.
class GammaParameters {
 public:
  explicit GammaParameters(index_t rf_max);

  index_t rf_max() const { return rf_max_; }
  /// L, counting the constant gamma_0.
  index_t levels() const { return levels_; }
  /// Number of trainable knobs: L - 1 (0 when rf_max < 3).
  index_t num_trainable() const { return levels_ - 1; }

  /// The float gamma_hat tensor (shape (L-1)), requires_grad while not
  /// frozen. Undefined when num_trainable() == 0.
  Tensor values() const { return values_; }

  /// Current binary snapshot (Heaviside at `threshold`), no autograd.
  std::vector<int> binary_snapshot(float threshold = 0.5F) const;

  /// Dilation currently encoded by the binary snapshot.
  index_t dilation(float threshold = 0.5F) const;

  /// Filter taps that survive at the current dilation:
  /// floor((rf_max - 1) / d) + 1.
  index_t alive_taps(float threshold = 0.5F) const;

  /// Clamps gamma_hat to [0, 1] in place (BinaryConnect housekeeping;
  /// call after each optimizer step).
  void clamp_values();

  /// Overwrites gamma_hat with the canonical encoding of dilation `d`.
  void set_dilation(index_t d);

  /// Stops gradient flow; the mask becomes a constant thereafter.
  void freeze();
  bool frozen() const { return frozen_; }

 private:
  index_t rf_max_;
  index_t levels_;
  Tensor values_;
  bool frozen_ = false;
};

}  // namespace pit::core
