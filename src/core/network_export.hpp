// Export of a searched PIT network to a plain dilated TCN.
//
// After Algorithm 1 converges, each PITConv1d encodes a power-of-two
// dilation d over its rf_max taps; the surviving taps sit at offsets
// 0, d, 2d, .... Export materializes a regular nn::Conv1d with
// kernel = floor((rf_max-1)/d) + 1 and dilation d, copying the surviving
// weight slices — the layout current MCU inference libraries support
// (paper Sec. III-A).
#pragma once

#include <memory>
#include <vector>

#include "core/pit_conv1d.hpp"
#include "nn/conv1d.hpp"

namespace pit::core {

/// Learned dilations of the searchable layers, in order.
std::vector<index_t> extract_dilations(const std::vector<PITConv1d*>& layers);

/// Builds the equivalent plain dilated conv and copies the surviving
/// weights (dst.weight[..., j] = src.weight[..., j*d]) and the bias.
std::unique_ptr<nn::Conv1d> export_conv(const PITConv1d& layer,
                                        RandomEngine& rng);

/// Packed surviving-tap weights of a PIT layer at its current dilation d:
/// a fresh (C_out, C_in, alive_taps) tensor with dst[..., j] = src[..., j*d].
/// This is the weight layout export_conv materializes and the frozen
/// inference runtime (src/runtime) packs into its plan.
Tensor exported_weight(const PITConv1d& layer);

/// Copies every parameter of `src_model` into `dst_model`, which must be
/// the same architecture built with plain dilated convs in place of the
/// PIT layers (models::dilated_conv_factory with extract_dilations()).
/// Same-shape parameters are copied verbatim; PIT conv weights are copied
/// through their surviving taps. Buffers (batch-norm statistics) are copied
/// verbatim. Throws if the structures do not line up.
void export_weights(const nn::Module& src_model,
                    const std::vector<PITConv1d*>& src_layers,
                    nn::Module& dst_model);

}  // namespace pit::core
