#include "core/channel_mask.hpp"

#include <algorithm>

#include "tensor/autograd.hpp"
#include "tensor/error.hpp"
#include "tensor/ops.hpp"

namespace pit::core {

namespace {

bool wants_grad(const TensorImpl& impl) {
  return impl.requires_grad || impl.grad_fn != nullptr;
}

/// y[n,c,t] = x[n,c,t] * g[c]; dg[c] += sum_{n,t} dy * x.
Tensor mul_channels(const Tensor& x, const Tensor& gate) {
  PIT_CHECK(x.rank() == 2 || x.rank() == 3,
            "mul_channels: input must be (N, C) or (N, C, T), got "
                << x.shape().to_string());
  PIT_CHECK(gate.rank() == 1 && gate.dim(0) == x.dim(1),
            "mul_channels: gate shape " << gate.shape().to_string()
                                        << " vs input "
                                        << x.shape().to_string());
  const index_t n = x.dim(0);
  const index_t c = x.dim(1);
  const index_t t = x.rank() == 3 ? x.dim(2) : 1;
  Tensor out = Tensor::zeros(x.shape());
  const float* xd = x.data();
  const float* gd = gate.data();
  float* od = out.data();
  for (index_t ni = 0; ni < n; ++ni) {
    for (index_t ci = 0; ci < c; ++ci) {
      const float g = gd[ci];
      const float* xrow = xd + (ni * c + ci) * t;
      float* orow = od + (ni * c + ci) * t;
      for (index_t ti = 0; ti < t; ++ti) {
        orow[ti] = xrow[ti] * g;
      }
    }
  }
  const Tensor tx = x;
  const Tensor tg = gate;
  return make_op_output(
      std::move(out), {x, gate}, "mul_channels",
      [tx, tg, n, c, t](TensorImpl& o) {
        const float* dy = o.grad.data();
        if (wants_grad(*tx.impl())) {
          auto xg = grad_span(*tx.impl());
          const float* gd2 = tg.data();
          for (index_t ni = 0; ni < n; ++ni) {
            for (index_t ci = 0; ci < c; ++ci) {
              const float g = gd2[ci];
              const index_t base = (ni * c + ci) * t;
              for (index_t ti = 0; ti < t; ++ti) {
                xg[base + ti] += dy[base + ti] * g;
              }
            }
          }
        }
        if (wants_grad(*tg.impl())) {
          auto gg = grad_span(*tg.impl());
          const float* xd2 = tx.data();
          for (index_t ci = 0; ci < c; ++ci) {
            float acc = 0.0F;
            for (index_t ni = 0; ni < n; ++ni) {
              const index_t base = (ni * c + ci) * t;
              for (index_t ti = 0; ti < t; ++ti) {
                acc += dy[base + ti] * xd2[base + ti];
              }
            }
            gg[ci] += acc;
          }
        }
      });
}

}  // namespace

ChannelGate::ChannelGate(index_t channels, float binarize_threshold)
    : channels_(channels), threshold_(binarize_threshold) {
  PIT_CHECK(channels >= 1, "ChannelGate: channels must be >= 1");
  PIT_CHECK(binarize_threshold > 0.0F && binarize_threshold < 1.0F,
            "ChannelGate: threshold must be in (0, 1)");
  gamma_ = register_parameter("channel_gamma", Tensor::ones(Shape{channels}));
}

Tensor ChannelGate::forward(const Tensor& input) {
  if (frozen_) {
    Tensor mask = Tensor::zeros(Shape{channels_});
    const auto bits = binary_snapshot();
    for (index_t i = 0; i < channels_; ++i) {
      mask.data()[i] = static_cast<float>(bits[static_cast<std::size_t>(i)]);
    }
    return mul_channels(input, mask);
  }
  return mul_channels(input, binarize(gamma_, threshold_));
}

index_t ChannelGate::alive_channels() const {
  index_t alive = 0;
  for (const int b : binary_snapshot()) {
    alive += b;
  }
  return alive;
}

std::vector<int> ChannelGate::binary_snapshot() const {
  std::vector<int> bits(static_cast<std::size_t>(channels_));
  const auto view = gamma_.span();
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = view[i] >= threshold_ ? 1 : 0;
  }
  return bits;
}

void ChannelGate::clamp_values() {
  for (float& v : gamma_.span()) {
    v = std::clamp(v, 0.0F, 1.0F);
  }
}

void ChannelGate::freeze() {
  frozen_ = true;
  gamma_.set_requires_grad(false);
}

Tensor channel_regularizer(const std::vector<ChannelGate*>& gates,
                           double lambda,
                           const std::vector<index_t>& cost_per_channel) {
  PIT_CHECK(lambda >= 0.0, "channel_regularizer: lambda must be >= 0");
  PIT_CHECK(cost_per_channel.size() == gates.size(),
            "channel_regularizer: " << cost_per_channel.size()
                                    << " costs for " << gates.size()
                                    << " gates");
  Tensor total = Tensor::scalar(0.0F);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    PIT_CHECK(gates[i] != nullptr, "channel_regularizer: null gate");
    if (gates[i]->frozen()) {
      continue;
    }
    Tensor term = sum(abs_op(gates[i]->gamma_values()));
    total = add(total,
                mul_scalar(term, static_cast<float>(cost_per_channel[i])));
  }
  return mul_scalar(total, static_cast<float>(lambda));
}

}  // namespace pit::core
