#include "core/regularizer.hpp"

#include <cmath>

#include "core/gamma.hpp"
#include "tensor/error.hpp"
#include "tensor/ops.hpp"

namespace pit::core {

std::vector<float> gamma_slice_weights(index_t rf_max) {
  const index_t levels = num_gamma_levels(rf_max);
  std::vector<float> weights;
  if (levels <= 1) {
    return weights;
  }
  weights.reserve(static_cast<std::size_t>(levels - 1));
  for (index_t i = 1; i <= levels - 1; ++i) {
    // round((rf_max - 1) / 2^(L - i)): slices re-enabled by gamma_i.
    const double denom = std::pow(2.0, static_cast<double>(levels - i));
    weights.push_back(static_cast<float>(
        std::llround(static_cast<double>(rf_max - 1) / denom)));
  }
  return weights;
}

namespace {

Tensor weighted_gamma_term(const PITConv1d& layer,
                           const std::vector<float>& slice_weights) {
  // Cin*Cout * sum_i w_i * |gamma_hat_i| for one layer, differentiable.
  Tensor w = Tensor::from_vector(
      slice_weights, Shape{static_cast<index_t>(slice_weights.size())});
  Tensor term = sum(mul(abs_op(layer.gamma().values()), w));
  const auto channel_product =
      static_cast<float>(layer.in_channels() * layer.out_channels());
  return mul_scalar(term, channel_product);
}

}  // namespace

Tensor size_regularizer(const std::vector<PITConv1d*>& layers, double lambda) {
  PIT_CHECK(lambda >= 0.0, "size_regularizer: lambda must be >= 0");
  Tensor total = Tensor::scalar(0.0F);
  for (const PITConv1d* layer : layers) {
    PIT_CHECK(layer != nullptr, "size_regularizer: null layer");
    if (layer->gamma().num_trainable() == 0 || layer->gamma().frozen()) {
      continue;
    }
    total = add(total, weighted_gamma_term(*layer,
                                           gamma_slice_weights(layer->rf_max())));
  }
  return mul_scalar(total, static_cast<float>(lambda));
}

Tensor flops_regularizer(const std::vector<PITConv1d*>& layers, double lambda,
                         const std::vector<index_t>& t_out_per_layer) {
  PIT_CHECK(lambda >= 0.0, "flops_regularizer: lambda must be >= 0");
  PIT_CHECK(t_out_per_layer.size() == layers.size(),
            "flops_regularizer: " << t_out_per_layer.size()
                                  << " t_out entries for " << layers.size()
                                  << " layers");
  Tensor total = Tensor::scalar(0.0F);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const PITConv1d* layer = layers[i];
    PIT_CHECK(layer != nullptr, "flops_regularizer: null layer");
    if (layer->gamma().num_trainable() == 0 || layer->gamma().frozen()) {
      continue;
    }
    auto weights = gamma_slice_weights(layer->rf_max());
    for (float& w : weights) {
      w *= static_cast<float>(t_out_per_layer[i]);
    }
    total = add(total, weighted_gamma_term(*layer, weights));
  }
  return mul_scalar(total, static_cast<float>(lambda));
}

index_t total_effective_params(const std::vector<PITConv1d*>& layers) {
  index_t total = 0;
  for (const PITConv1d* layer : layers) {
    PIT_CHECK(layer != nullptr, "total_effective_params: null layer");
    total += layer->effective_params();
  }
  return total;
}

}  // namespace pit::core
