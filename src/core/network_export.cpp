#include "core/network_export.hpp"

#include <algorithm>
#include <unordered_map>

#include "tensor/error.hpp"

namespace pit::core {

std::vector<index_t> extract_dilations(const std::vector<PITConv1d*>& layers) {
  std::vector<index_t> out;
  out.reserve(layers.size());
  for (const PITConv1d* layer : layers) {
    PIT_CHECK(layer != nullptr, "extract_dilations: null layer");
    out.push_back(layer->current_dilation());
  }
  return out;
}

namespace {

/// dst tap j <- src tap j*d for all channel pairs.
void copy_surviving_taps(const Tensor& src_weight, Tensor dst_weight,
                         index_t d) {
  const index_t pairs = src_weight.dim(0) * src_weight.dim(1);
  const index_t src_k = src_weight.dim(2);
  const index_t dst_k = dst_weight.dim(2);
  PIT_CHECK(dst_k == (src_k - 1) / d + 1,
            "export: kernel " << dst_k << " does not match rf " << src_k
                              << " at dilation " << d);
  const float* sd = src_weight.data();
  float* dd = dst_weight.data();
  for (index_t p = 0; p < pairs; ++p) {
    for (index_t j = 0; j < dst_k; ++j) {
      dd[p * dst_k + j] = sd[p * src_k + j * d];
    }
  }
}

}  // namespace

std::unique_ptr<nn::Conv1d> export_conv(const PITConv1d& layer,
                                        RandomEngine& rng) {
  const index_t d = layer.current_dilation();
  const index_t k = layer.current_alive_taps();
  auto conv = std::make_unique<nn::Conv1d>(
      layer.in_channels(), layer.out_channels(), k,
      nn::Conv1dOptions{.dilation = d,
                        .stride = layer.stride(),
                        .bias = layer.bias().defined()},
      rng);
  copy_surviving_taps(layer.weight(), conv->weight(), d);
  if (layer.bias().defined()) {
    Tensor dst_bias = conv->bias();
    std::copy(layer.bias().span().begin(), layer.bias().span().end(),
              dst_bias.span().begin());
  }
  return conv;
}

Tensor exported_weight(const PITConv1d& layer) {
  Tensor out = Tensor::empty(Shape{layer.out_channels(), layer.in_channels(),
                                   layer.current_alive_taps()});
  copy_surviving_taps(layer.weight(), out, layer.current_dilation());
  return out;
}

void export_weights(const nn::Module& src_model,
                    const std::vector<PITConv1d*>& src_layers,
                    nn::Module& dst_model) {
  // Weight tensors owned by PIT layers need strided copies; match them by
  // storage identity.
  std::unordered_map<const TensorImpl*, const PITConv1d*> pit_weights;
  for (const PITConv1d* layer : src_layers) {
    PIT_CHECK(layer != nullptr, "export_weights: null layer");
    pit_weights[layer->weight().impl().get()] = layer;
  }

  const auto src_params = src_model.named_parameters();
  const auto dst_params = dst_model.named_parameters();
  PIT_CHECK(src_params.size() >= dst_params.size(),
            "export_weights: destination has more parameters than source");

  // Walk both lists in order; skip source gamma tensors (they have no
  // destination counterpart).
  std::size_t di = 0;
  for (const auto& sp : src_params) {
    if (sp.name.size() >= 9 &&
        sp.name.compare(sp.name.size() - 9, 9, "gamma_hat") == 0) {
      continue;
    }
    PIT_CHECK(di < dst_params.size(),
              "export_weights: ran out of destination parameters at "
                  << sp.name);
    const auto& dp = dst_params[di++];
    const auto it = pit_weights.find(sp.value.impl().get());
    if (it != pit_weights.end()) {
      copy_surviving_taps(sp.value, dp.value, it->second->current_dilation());
      continue;
    }
    PIT_CHECK(sp.value.shape() == dp.value.shape(),
              "export_weights: shape mismatch " << sp.name << " "
                                                << sp.value.shape().to_string()
                                                << " vs " << dp.name << " "
                                                << dp.value.shape().to_string());
    Tensor dst = dp.value;
    std::copy(sp.value.span().begin(), sp.value.span().end(),
              dst.span().begin());
  }
  PIT_CHECK(di == dst_params.size(),
            "export_weights: unmatched destination parameters remain");

  const auto src_buffers = src_model.named_buffers();
  const auto dst_buffers = dst_model.named_buffers();
  PIT_CHECK(src_buffers.size() == dst_buffers.size(),
            "export_weights: buffer count mismatch");
  for (std::size_t i = 0; i < src_buffers.size(); ++i) {
    PIT_CHECK(src_buffers[i].value.shape() == dst_buffers[i].value.shape(),
              "export_weights: buffer shape mismatch at "
                  << src_buffers[i].name);
    Tensor dst = dst_buffers[i].value;
    std::copy(src_buffers[i].value.span().begin(),
              src_buffers[i].value.span().end(), dst.span().begin());
  }
}

}  // namespace pit::core
