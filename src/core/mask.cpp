#include "core/mask.hpp"

#include "core/gamma.hpp"
#include "tensor/error.hpp"
#include "tensor/ops.hpp"

namespace pit::core {

namespace {

/// min(v2(t), levels-1), with t = 0 mapping to levels-1 (always alive).
index_t gamma_index_for_tap(index_t t, index_t levels) {
  if (t == 0) {
    return levels - 1;
  }
  index_t v2 = 0;
  while (t % 2 == 0) {
    t /= 2;
    ++v2;
  }
  return v2 < levels - 1 ? v2 : levels - 1;
}

}  // namespace

Tensor t_matrix(index_t levels) {
  PIT_CHECK(levels >= 1, "t_matrix: levels must be >= 1");
  Tensor t = Tensor::zeros(Shape{levels, levels});
  float* td = t.data();
  for (index_t r = 0; r < levels; ++r) {
    for (index_t c = 0; c < levels; ++c) {
      td[r * levels + c] = (r <= levels - 1 - c) ? 1.0F : 0.0F;
    }
  }
  return t;
}

Tensor k_matrix(index_t levels, index_t rf_max) {
  PIT_CHECK(levels == num_gamma_levels(rf_max),
            "k_matrix: levels " << levels << " inconsistent with rf_max "
                                << rf_max);
  Tensor k = Tensor::zeros(Shape{levels, rf_max});
  float* kd = k.data();
  for (index_t t = 0; t < rf_max; ++t) {
    const index_t c = gamma_index_for_tap(t, levels);
    kd[c * rf_max + t] = 1.0F;
  }
  return k;
}

Tensor build_mask(const Tensor& gamma_bin, index_t rf_max) {
  const index_t levels = num_gamma_levels(rf_max);
  if (levels <= 1) {
    PIT_CHECK(!gamma_bin.defined() || gamma_bin.numel() == 0,
              "build_mask: gammas supplied for a knob-free layer");
    return Tensor::ones(Shape{rf_max});
  }
  PIT_CHECK(gamma_bin.defined() && gamma_bin.rank() == 1 &&
                gamma_bin.dim(0) == levels - 1,
            "build_mask: expected " << levels - 1 << " gammas for rf_max "
                                    << rf_max);
  // gamma_full = [1, gamma_1, ..., gamma_{L-1}]  (Eq. 3's gamma_0 = 1)
  Tensor gamma_full = prepend_one(gamma_bin);
  // A = (gamma · 1_{1xL}) ⊙ T + (1 − T): column c holds gammas 0..L-1-c,
  // padded with ones.
  Tensor t_mat = t_matrix(levels);
  Tensor ones_minus_t = sub(Tensor::ones(Shape{levels, levels}), t_mat);
  Tensor a = add(mul(replicate_cols(gamma_full, levels), t_mat), ones_minus_t);
  // B = A · K scatters column products to taps; prod over rows forms M.
  Tensor b = matmul(a, k_matrix(levels, rf_max));
  return prod_dim0(b);
}

std::vector<float> reference_mask(const std::vector<int>& gamma_bits,
                                  index_t rf_max) {
  const index_t levels = num_gamma_levels(rf_max);
  PIT_CHECK(static_cast<index_t>(gamma_bits.size()) == levels - 1,
            "reference_mask: expected " << levels - 1 << " bits for rf_max "
                                        << rf_max);
  // Gamma_i = gamma_0 * ... * gamma_{L-1-i}  (Eq. 3), gamma_0 = 1.
  std::vector<float> big_gamma(static_cast<std::size_t>(levels), 1.0F);
  for (index_t i = 0; i < levels; ++i) {
    float prod = 1.0F;
    for (index_t j = 0; j < levels - 1 - i; ++j) {
      prod *= static_cast<float>(gamma_bits[static_cast<std::size_t>(j)]);
    }
    big_gamma[static_cast<std::size_t>(i)] = prod;
  }
  std::vector<float> mask(static_cast<std::size_t>(rf_max), 0.0F);
  for (index_t t = 0; t < rf_max; ++t) {
    mask[static_cast<std::size_t>(t)] =
        big_gamma[static_cast<std::size_t>(gamma_index_for_tap(t, levels))];
  }
  return mask;
}

std::vector<float> mask_for_dilation(index_t d, index_t rf_max) {
  PIT_CHECK(d >= 1, "mask_for_dilation: d must be >= 1");
  std::vector<float> mask(static_cast<std::size_t>(rf_max), 0.0F);
  for (index_t t = 0; t < rf_max; t += d) {
    mask[static_cast<std::size_t>(t)] = 1.0F;
  }
  return mask;
}

}  // namespace pit::core
