#include "core/search.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "tensor/error.hpp"

namespace pit::core {

std::vector<SearchPoint> pareto_front(std::vector<SearchPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const SearchPoint& a, const SearchPoint& b) {
              if (a.total_params != b.total_params) {
                return a.total_params < b.total_params;
              }
              return a.val_loss < b.val_loss;
            });
  std::vector<SearchPoint> front;
  double best_loss = std::numeric_limits<double>::infinity();
  for (const SearchPoint& p : points) {
    if (p.val_loss < best_loss) {
      front.push_back(p);
      best_loss = p.val_loss;
    }
  }
  return front;
}

DilationSearch::DilationSearch(ModelFactory factory, LossFn loss,
                               ParamsFn params_fn)
    : factory_(std::move(factory)),
      loss_(std::move(loss)),
      params_fn_(std::move(params_fn)) {
  PIT_CHECK(factory_ != nullptr, "DilationSearch: null model factory");
  PIT_CHECK(loss_ != nullptr, "DilationSearch: null loss");
  PIT_CHECK(params_fn_ != nullptr, "DilationSearch: null params function");
}

SearchResult DilationSearch::run(data::DataLoader& train,
                                 data::DataLoader& val,
                                 const SearchConfig& config) {
  PIT_CHECK(!config.lambdas.empty() && !config.warmup_epochs.empty(),
            "DilationSearch: empty sweep grid");
  SearchResult result;
  for (const int warmup : config.warmup_epochs) {
    for (const double lambda : config.lambdas) {
      PitModelBundle bundle = factory_();
      PIT_CHECK(bundle.model != nullptr && !bundle.pit_layers.empty(),
                "DilationSearch: factory returned an empty bundle");
      PitTrainerOptions options = config.trainer;
      options.lambda = lambda;
      options.warmup_epochs = warmup;
      PitTrainer trainer(*bundle.model, bundle.pit_layers, loss_, options);
      PitTrainingResult run_result = trainer.run(train, val);

      SearchPoint point;
      point.lambda = lambda;
      point.warmup_epochs = warmup;
      point.dilations = run_result.dilations;
      point.searchable_params = run_result.searchable_params;
      point.total_params = params_fn_(run_result.dilations);
      point.val_loss = run_result.val_loss;
      point.seconds = run_result.total_seconds;
      if (config.trainer.verbose) {
        std::printf("search: lambda=%.1e warmup=%d -> params=%lld loss=%.4f\n",
                    lambda, warmup,
                    static_cast<long long>(point.total_params),
                    point.val_loss);
      }
      result.all.push_back(std::move(point));
    }
  }
  result.pareto = pareto_front(result.all);
  return result;
}

SmallMediumLarge select_small_medium_large(
    const std::vector<SearchPoint>& points, index_t reference_params) {
  PIT_CHECK(!points.empty(), "select_small_medium_large: no points");
  const SearchPoint* small = &points[0];
  const SearchPoint* large = &points[0];
  const SearchPoint* medium = &points[0];
  for (const SearchPoint& p : points) {
    if (p.total_params < small->total_params) {
      small = &p;
    }
    if (p.total_params > large->total_params) {
      large = &p;
    }
    const auto dist = [reference_params](const SearchPoint& q) {
      return std::llabs(static_cast<long long>(q.total_params) -
                        static_cast<long long>(reference_params));
    };
    if (dist(p) < dist(*medium)) {
      medium = &p;
    }
  }
  return {*small, *medium, *large};
}

}  // namespace pit::core
