#include "core/search.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "tensor/error.hpp"

namespace pit::core {

std::vector<SearchPoint> pareto_front(std::vector<SearchPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const SearchPoint& a, const SearchPoint& b) {
              if (a.total_params != b.total_params) {
                return a.total_params < b.total_params;
              }
              return a.val_loss < b.val_loss;
            });
  std::vector<SearchPoint> front;
  double best_loss = std::numeric_limits<double>::infinity();
  for (const SearchPoint& p : points) {
    if (p.val_loss < best_loss) {
      front.push_back(p);
      best_loss = p.val_loss;
    }
  }
  return front;
}

DilationSearch::DilationSearch(ModelFactory factory, LossFn loss,
                               ParamsFn params_fn)
    : factory_(std::move(factory)),
      loss_(std::move(loss)),
      params_fn_(std::move(params_fn)) {
  PIT_CHECK(factory_ != nullptr, "DilationSearch: null model factory");
  PIT_CHECK(loss_ != nullptr, "DilationSearch: null loss");
  PIT_CHECK(params_fn_ != nullptr, "DilationSearch: null params function");
}

SearchResult DilationSearch::run(data::DataLoader& train,
                                 data::DataLoader& val,
                                 const SearchConfig& config) {
  PIT_CHECK(!config.lambdas.empty() && !config.warmup_epochs.empty(),
            "DilationSearch: empty sweep grid");
  PIT_CHECK(config.workers >= 0,
            "DilationSearch: workers = " << config.workers);

  // Every grid point trains an INDEPENDENT model, so the sweep is
  // embarrassingly parallel. Two things keep the result identical across
  // worker counts: models come out of the (stateful) factory in grid
  // order before any training starts, and each point trains on private
  // DataLoader copies snapshotted here — a point's shuffle sequence never
  // depends on which points ran before it.
  struct GridPoint {
    double lambda = 0.0;
    int warmup = 0;
    PitModelBundle bundle;
  };
  std::vector<GridPoint> grid;
  grid.reserve(config.warmup_epochs.size() * config.lambdas.size());
  for (const int warmup : config.warmup_epochs) {
    for (const double lambda : config.lambdas) {
      GridPoint point;
      point.lambda = lambda;
      point.warmup = warmup;
      point.bundle = factory_();
      PIT_CHECK(point.bundle.model != nullptr &&
                    !point.bundle.pit_layers.empty(),
                "DilationSearch: factory returned an empty bundle");
      grid.push_back(std::move(point));
    }
  }

  SearchResult result;
  result.all.resize(grid.size());
  std::atomic<std::size_t> next{0};
  std::mutex io_mutex;
  std::exception_ptr first_error;

  const auto run_point = [&](std::size_t i) {
    GridPoint& gp = grid[i];
    PitTrainerOptions options = config.trainer;
    options.lambda = gp.lambda;
    options.warmup_epochs = gp.warmup;
    PitTrainer trainer(*gp.bundle.model, gp.bundle.pit_layers, loss_,
                       options);
    data::DataLoader train_copy = train;  // private shuffle state
    data::DataLoader val_copy = val;
    PitTrainingResult run_result = trainer.run(train_copy, val_copy);

    SearchPoint point;
    point.lambda = gp.lambda;
    point.warmup_epochs = gp.warmup;
    point.dilations = run_result.dilations;
    point.searchable_params = run_result.searchable_params;
    point.total_params = params_fn_(run_result.dilations);
    point.val_loss = run_result.val_loss;
    point.seconds = run_result.total_seconds;
    if (config.trainer.verbose) {
      const std::lock_guard<std::mutex> lock(io_mutex);
      std::printf("search: lambda=%.1e warmup=%d -> params=%lld loss=%.4f\n",
                  gp.lambda, gp.warmup,
                  static_cast<long long>(point.total_params),
                  point.val_loss);
    }
    result.all[i] = std::move(point);
    gp.bundle = PitModelBundle{};  // free the trained model right away
  };

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= grid.size()) {
        return;
      }
      try {
        run_point(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(io_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  };

  std::size_t workers = config.workers > 0
                            ? static_cast<std::size_t>(config.workers)
                            : static_cast<std::size_t>(std::max(
                                  1U, std::thread::hardware_concurrency()));
  workers = std::min(workers, grid.size());
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
  result.pareto = pareto_front(result.all);
  return result;
}

SmallMediumLarge select_small_medium_large(
    const std::vector<SearchPoint>& points, index_t reference_params) {
  PIT_CHECK(!points.empty(), "select_small_medium_large: no points");
  const SearchPoint* small = &points[0];
  const SearchPoint* large = &points[0];
  const SearchPoint* medium = &points[0];
  for (const SearchPoint& p : points) {
    if (p.total_params < small->total_params) {
      small = &p;
    }
    if (p.total_params > large->total_params) {
      large = &p;
    }
    const auto dist = [reference_params](const SearchPoint& q) {
      return std::llabs(static_cast<long long>(q.total_params) -
                        static_cast<long long>(reference_params));
    };
    if (dist(p) < dist(*medium)) {
      medium = &p;
    }
  }
  return {*small, *medium, *large};
}

}  // namespace pit::core
