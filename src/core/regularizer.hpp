// Cost regularizers driving the sparsification of the gammas (paper Eq. 6).
//
// L_R^size(gamma) = lambda * sum_layers Cin*Cout *
//                     sum_{i=1..L-1} round((rf_max-1)/2^(L-i)) * |gamma_i|
//
// The per-knob weight round((rf_max-1)/2^(L-i)) is the number of filter
// time slices that knob keeps alive (see Fig. 2), so the term is a linear
// proxy of the layer's parameter count. The FLOPs variant additionally
// multiplies by the layer's output time steps, steering the search toward
// operation count instead of model size (Sec. III-B notes this
// extensibility).
#pragma once

#include <vector>

#include "core/pit_conv1d.hpp"
#include "tensor/tensor.hpp"

namespace pit::core {

enum class CostKind {
  kSize,   // parameters (paper's target metric)
  kFlops,  // multiply-accumulates
};

/// Per-knob slice weights for a layer: entry j (knob gamma_{j+1}) is
/// round((rf_max - 1) / 2^(L-1-j)).
std::vector<float> gamma_slice_weights(index_t rf_max);

/// Eq. 6: differentiable scalar penalty over all layers' float gammas.
/// Returns a zero scalar if no layer has trainable knobs.
Tensor size_regularizer(const std::vector<PITConv1d*>& layers, double lambda);

/// FLOPs-targeting variant: slice weights additionally scaled by each
/// layer's output time steps. `t_out_per_layer` must align with `layers`.
Tensor flops_regularizer(const std::vector<PITConv1d*>& layers, double lambda,
                         const std::vector<index_t>& t_out_per_layer);

/// The (non-differentiable) value Eq. 6 is a proxy for: total effective
/// parameters of the searchable layers at their current binarized dilations.
index_t total_effective_params(const std::vector<PITConv1d*>& layers);

}  // namespace pit::core
