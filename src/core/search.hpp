// Design-space exploration: run Algorithm 1 across a grid of regularization
// strengths and warmup lengths (the two knobs the paper sweeps, Sec. IV-B)
// and collect the Pareto frontier in the (model size, task loss) plane —
// what Fig. 4 plots.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/trainer.hpp"
#include "nn/module.hpp"

namespace pit::core {

/// A freshly built searchable model: the owning module plus non-owning
/// pointers to its PIT layers in network order.
struct PitModelBundle {
  std::unique_ptr<nn::Module> model;
  std::vector<PITConv1d*> pit_layers;
};

/// Builds a new, independently initialized searchable model per search run.
using ModelFactory = std::function<PitModelBundle()>;

/// Maps learned per-layer dilations to the full architecture's parameter
/// count (searchable convs at alive taps + all fixed layers); bind
/// ResTCN::params_with_dilations / TempoNet::params_with_dilations here.
using ParamsFn = std::function<index_t(const std::vector<index_t>&)>;

struct SearchPoint {
  double lambda = 0.0;
  int warmup_epochs = 0;
  std::vector<index_t> dilations;
  index_t total_params = 0;       // via ParamsFn (full architecture)
  index_t searchable_params = 0;  // PIT layers only
  double val_loss = 0.0;
  double seconds = 0.0;
};

struct SearchConfig {
  std::vector<double> lambdas = {1e-7, 1e-6, 1e-5};
  std::vector<int> warmup_epochs = {2, 5};
  PitTrainerOptions trainer;  // lambda / warmup_epochs overridden per point
  /// Worker threads for the (lambda x warmup) grid. Every grid point is an
  /// independent model (fresh factory() build, private DataLoader copies),
  /// so points run concurrently; 0 picks min(grid size, hardware threads).
  /// Results are identical for every worker count: models are built in
  /// grid order before dispatch and each point's loaders start from the
  /// loader state at run() entry.
  int workers = 0;
};

struct SearchResult {
  std::vector<SearchPoint> all;
  std::vector<SearchPoint> pareto;  // sorted by ascending params
};

/// Points not dominated in (total_params, val_loss); both minimized.
/// Returned sorted by ascending parameter count.
std::vector<SearchPoint> pareto_front(std::vector<SearchPoint> points);

class DilationSearch {
 public:
  DilationSearch(ModelFactory factory, LossFn loss, ParamsFn params_fn);

  /// Sweeps the grid (in parallel per SearchConfig::workers) and returns
  /// all points plus their Pareto front. `result.all` is always in grid
  /// order (warmup-major, lambda-minor), regardless of worker count.
  SearchResult run(data::DataLoader& train, data::DataLoader& val,
                   const SearchConfig& config);

 private:
  ModelFactory factory_;
  LossFn loss_;
  ParamsFn params_fn_;
};

/// Table-I-style selection from a set of points: the smallest, the largest,
/// and the one closest in size to `reference_params` (the hand-tuned
/// network), in that order. Requires a non-empty input.
struct SmallMediumLarge {
  SearchPoint small;
  SearchPoint medium;
  SearchPoint large;
};
SmallMediumLarge select_small_medium_large(
    const std::vector<SearchPoint>& points, index_t reference_params);

}  // namespace pit::core
