// PIT training procedure (paper Algorithm 1).
//
// Phase 1 (warmup): all gammas start at 1; only the weights are trained on
// the task loss for a fixed number of epochs.
// Phase 2 (pruning): weights and gammas are updated concurrently on
// L_PIT = L_perf(W) + L_R(gamma) until the validation loss stops improving.
// Phase 3 (fine-tune): gammas are binarized and frozen; the dilated network
// is fine-tuned on the task loss alone with early stopping.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/pit_conv1d.hpp"
#include "core/regularizer.hpp"
#include "data/dataloader.hpp"
#include "nn/module.hpp"

namespace pit::core {

/// Task loss: maps (prediction, target) to a scalar tensor.
using LossFn = std::function<Tensor(const Tensor&, const Tensor&)>;

enum class Phase { kWarmup, kPruning, kFineTune };

struct EpochStats {
  Phase phase = Phase::kWarmup;
  int epoch = 0;  // global epoch index across phases
  double train_loss = 0.0;
  double val_loss = 0.0;
  std::vector<index_t> dilations;
  index_t searchable_params = 0;
};

struct PitTrainerOptions {
  double lambda = 1e-6;          // regularization strength (Eq. 6)
  CostKind cost = CostKind::kSize;
  int warmup_epochs = 5;         // Steps_wu, in epochs
  int max_prune_epochs = 60;     // safety bound on the pruning loop
  int finetune_epochs = 30;      // Steps_ft upper bound
  int patience = 5;              // convergence criterion (both phases 2, 3)
  double lr_weights = 1e-3;      // Adam on W
  double lr_gamma = 1e-2;        // Adam on gamma_hat
  bool verbose = false;
};

struct PitTrainingResult {
  std::vector<index_t> dilations;      // learned, one per searchable conv
  double val_loss = 0.0;               // after fine-tuning (best)
  index_t searchable_params = 0;       // effective params of PIT layers
  double warmup_seconds = 0.0;
  double prune_seconds = 0.0;
  double finetune_seconds = 0.0;
  double total_seconds = 0.0;
  std::vector<EpochStats> history;
};

/// Runs Algorithm 1 on a model whose searchable convs are PITConv1d layers.
class PitTrainer {
 public:
  /// `model` must own the layers in `pit_layers`. For CostKind::kFlops,
  /// `t_out_per_layer` must give each searchable conv's output time steps.
  PitTrainer(nn::Module& model, std::vector<PITConv1d*> pit_layers,
             LossFn loss, const PitTrainerOptions& options,
             std::vector<index_t> t_out_per_layer = {});

  PitTrainingResult run(data::DataLoader& train, data::DataLoader& val);

 private:
  nn::Module& model_;
  std::vector<PITConv1d*> pit_layers_;
  LossFn loss_;
  PitTrainerOptions options_;
  std::vector<index_t> t_out_per_layer_;
};

/// Average task loss over a loader (eval mode, no grad, weighted by batch
/// size). Restores training mode before returning.
double evaluate_loss(nn::Module& model, const LossFn& loss,
                     data::DataLoader& loader);

struct PlainTrainingOptions {
  int max_epochs = 50;
  int patience = 5;
  double lr = 1e-3;
  bool verbose = false;
};

struct PlainTrainingResult {
  double best_val_loss = 0.0;
  int epochs_run = 0;
  double seconds = 0.0;
};

/// Ordinary supervised training with early stopping over the given
/// parameters (the "No-NAS training" baseline of Fig. 5; also used for the
/// warmup and fine-tuning phases). Restores the best weights at the end.
PlainTrainingResult train_supervised(nn::Module& model, const LossFn& loss,
                                     data::DataLoader& train,
                                     data::DataLoader& val,
                                     std::vector<Tensor> params,
                                     const PlainTrainingOptions& options);

}  // namespace pit::core
