#include "core/pit_conv1d.hpp"

#include <cmath>

#include "core/mask.hpp"
#include "nn/conv1d.hpp"
#include "nn/kernels/kernels.hpp"
#include "tensor/autograd.hpp"
#include "tensor/error.hpp"
#include "tensor/ops.hpp"

namespace pit::core {

Tensor masked_causal_conv1d(const Tensor& x, const Tensor& weight,
                            const Tensor& bias, const Tensor& mask,
                            index_t stride) {
  PIT_CHECK(x.rank() == 3, "masked_causal_conv1d: input must be (N, C, T)");
  PIT_CHECK(weight.rank() == 3,
            "masked_causal_conv1d: weight must be (Cout, Cin, K)");
  PIT_CHECK(mask.defined() && mask.rank() == 1 &&
                mask.dim(0) == weight.dim(2),
            "masked_causal_conv1d: mask must have one entry per tap");
  PIT_CHECK(x.dim(1) == weight.dim(1), "masked_causal_conv1d: Cin mismatch");
  PIT_CHECK(stride >= 1, "masked_causal_conv1d: stride must be >= 1");
  if (bias.defined()) {
    PIT_CHECK(bias.rank() == 1 && bias.dim(0) == weight.dim(0),
              "masked_causal_conv1d: bias shape");
  }

  nn::kernels::ConvDims dims{};
  dims.n = x.dim(0);
  dims.c_in = x.dim(1);
  dims.t_in = x.dim(2);
  dims.c_out = weight.dim(0);
  dims.k = weight.dim(2);
  dims.dilation = 1;  // dilation is *encoded in the mask* (seed layout)
  dims.stride = stride;
  dims.t_out = nn::causal_conv1d_output_steps(dims.t_in, stride);

  // Effective weights W ⊙ M (mask broadcast over channel pairs). Saved for
  // the backward input pass.
  Tensor weff = Tensor::zeros(weight.shape());
  {
    const float* wd = weight.data();
    const float* md = mask.data();
    float* ed = weff.data();
    const index_t pairs = dims.c_out * dims.c_in;
    for (index_t p = 0; p < pairs; ++p) {
      for (index_t i = 0; i < dims.k; ++i) {
        ed[p * dims.k + i] = wd[p * dims.k + i] * md[i];
      }
    }
  }

  Tensor out = Tensor::zeros(Shape{dims.n, dims.c_out, dims.t_out});
  nn::kernels::conv_forward(x.data(), weff.data(),
                           bias.defined() ? bias.data() : nullptr, out.data(),
                           dims);

  const Tensor tx = x;
  const Tensor tw = weight;
  const Tensor tb = bias;
  const Tensor tm = mask;
  const Tensor teff = weff;
  std::vector<Tensor> inputs = {x, weight, mask};
  if (bias.defined()) {
    inputs.push_back(bias);
  }
  return make_op_output(
      std::move(out), inputs, "masked_causal_conv1d",
      [tx, tw, tb, tm, teff, dims](TensorImpl& o) {
        const float* dy = o.grad.data();
        auto needs = [](const Tensor& t) {
          return t.defined() &&
                 (t.impl()->requires_grad || t.impl()->grad_fn != nullptr);
        };
        if (needs(tx)) {
          auto xg = grad_span(*tx.impl());
          nn::kernels::conv_backward_input(dy, teff.data(), xg.data(), dims);
        }
        const bool w_needs = needs(tw);
        const bool m_needs = needs(tm);
        if (w_needs || m_needs) {
          // Gradient w.r.t. the *effective* weights, then chain rule:
          // dW = dWeff ⊙ M,  dM_i = sum_{co,ci} dWeff[co,ci,i] * W[co,ci,i].
          std::vector<float> dweff(
              static_cast<std::size_t>(tw.numel()), 0.0F);
          nn::kernels::conv_backward_weight(dy, tx.data(), dweff.data(), dims);
          const float* wd = tw.data();
          const float* md = tm.data();
          const index_t pairs = dims.c_out * dims.c_in;
          if (w_needs) {
            auto wg = grad_span(*tw.impl());
            for (index_t p = 0; p < pairs; ++p) {
              for (index_t i = 0; i < dims.k; ++i) {
                wg[p * dims.k + i] +=
                    dweff[static_cast<std::size_t>(p * dims.k + i)] * md[i];
              }
            }
          }
          if (m_needs) {
            auto mg = grad_span(*tm.impl());
            for (index_t i = 0; i < dims.k; ++i) {
              float acc = 0.0F;
              for (index_t p = 0; p < pairs; ++p) {
                acc += dweff[static_cast<std::size_t>(p * dims.k + i)] *
                       wd[p * dims.k + i];
              }
              mg[i] += acc;
            }
          }
        }
        if (needs(tb)) {
          auto bg = grad_span(*tb.impl());
          nn::kernels::conv_backward_bias(dy, bg.data(), dims);
        }
      });
}

PITConv1d::PITConv1d(index_t in_channels, index_t out_channels, index_t rf_max,
                     const PitConv1dOptions& options, RandomEngine& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      rf_max_(rf_max),
      options_(options),
      gamma_(rf_max) {
  PIT_CHECK(in_channels >= 1 && out_channels >= 1 && rf_max >= 1,
            "PITConv1d: channels and rf_max must be >= 1");
  PIT_CHECK(options.stride >= 1, "PITConv1d: stride must be >= 1");
  PIT_CHECK(options.binarize_threshold > 0.0F &&
                options.binarize_threshold < 1.0F,
            "PITConv1d: threshold must be in (0, 1)");
  const auto fan_in = static_cast<float>(in_channels * rf_max);
  const float bound = std::sqrt(6.0F / fan_in);
  weight_ = register_parameter(
      "weight", Tensor::uniform(Shape{out_channels, in_channels, rf_max},
                                -bound, bound, rng));
  if (options.bias) {
    const float bias_bound = 1.0F / std::sqrt(fan_in);
    bias_ = register_parameter(
        "bias",
        Tensor::uniform(Shape{out_channels}, -bias_bound, bias_bound, rng));
  }
  if (gamma_.num_trainable() > 0) {
    // Registered so snapshots/optimizers can reach it; the trainer splits
    // gamma tensors from weight tensors by layer introspection.
    register_parameter("gamma_hat", gamma_.values());
  }
}

Tensor PITConv1d::forward(const Tensor& input) {
  if (gamma_.frozen()) {
    if (!frozen_mask_.defined()) {
      frozen_mask_ = Tensor::from_vector(
          reference_mask(gamma_.binary_snapshot(options_.binarize_threshold),
                         rf_max_),
          Shape{rf_max_});
    }
    return masked_causal_conv1d(input, weight_, bias_, frozen_mask_,
                                options_.stride);
  }
  Tensor mask;
  if (gamma_.num_trainable() > 0) {
    Tensor gamma_bin =
        binarize(gamma_.values(), options_.binarize_threshold);
    mask = build_mask(gamma_bin, rf_max_);
  } else {
    mask = Tensor::ones(Shape{rf_max_});
  }
  return masked_causal_conv1d(input, weight_, bias_, mask, options_.stride);
}

index_t PITConv1d::current_dilation() const {
  return gamma_.dilation(options_.binarize_threshold);
}

index_t PITConv1d::current_alive_taps() const {
  return gamma_.alive_taps(options_.binarize_threshold);
}

index_t PITConv1d::effective_params() const {
  index_t params = in_channels_ * out_channels_ * current_alive_taps();
  if (bias_.defined()) {
    params += out_channels_;
  }
  return params;
}

void PITConv1d::freeze_gamma() {
  gamma_.freeze();
  frozen_mask_ = Tensor();  // rebuilt lazily from the frozen snapshot
}

models::ConvFactory pit_conv_factory(RandomEngine& rng,
                                     std::vector<PITConv1d*>& out_layers,
                                     PitConv1dOptions options) {
  return [&rng, &out_layers, options](const models::TemporalConvSpec& spec) {
    PitConv1dOptions layer_options = options;
    layer_options.stride = spec.stride;
    auto layer = std::make_unique<PITConv1d>(spec.in_channels,
                                             spec.out_channels,
                                             spec.receptive_field(),
                                             layer_options, rng);
    out_layers.push_back(layer.get());
    return layer;
  };
}

std::vector<PITConv1d*> collect_pit_layers(
    const std::vector<nn::Module*>& temporal_convs) {
  std::vector<PITConv1d*> out;
  for (nn::Module* m : temporal_convs) {
    if (auto* p = dynamic_cast<PITConv1d*>(m)) {
      out.push_back(p);
    }
  }
  return out;
}

}  // namespace pit::core
