// Differentiable construction of the time-slice mask M (paper Eq. 3-4).
//
// The binary gammas are combined into Gamma products
// (Gamma_i = gamma_0 * ... * gamma_{L-1-i}, Eq. 3), which are scattered
// into a length-rf_max mask: tap t is governed by Gamma_{g(t)} where
// g(t) = min(v2(t), L-1) and v2 is the 2-adic valuation (tap 0 and the
// largest power-of-two tap are always alive). Eq. 4 expresses the same
// construction with tensor operations through two constant 0/1 matrices:
//
//   M = prod_columns{ [(gamma · 1_{1xL}) ⊙ T + (1_{LxL} − T)] · K }
//
// where T is an upper-triangular matrix with inverted columns and K
// one-hot-selects which Gamma product each tap uses.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace pit::core {

/// T matrix of Eq. 4: (L x L), T[r][c] = 1 iff r <= L-1-c. Column c of
/// (gamma replicated, masked by T, 1 elsewhere) multiplies out to Gamma_c.
Tensor t_matrix(index_t levels);

/// K matrix of Eq. 4: (L x rf_max), K[c][t] = 1 iff tap t is governed by
/// Gamma_c, i.e. c = min(v2(t), L-1) with v2(0) := L-1.
Tensor k_matrix(index_t levels, index_t rf_max);

/// Differentiable Eq. 4 mask from *binarized* gammas (shape (L-1); pass an
/// undefined tensor when the layer has no knobs). Returns shape (rf_max);
/// gradients flow to the gamma tensor through the product chain.
Tensor build_mask(const Tensor& gamma_bin, index_t rf_max);

/// Non-differentiable reference of the same construction straight from
/// Eq. 3 (used by property tests and frozen layers).
std::vector<float> reference_mask(const std::vector<int>& gamma_bits,
                                  index_t rf_max);

/// Mask with taps at multiples of `d` alive (what a regular dilated conv
/// of dilation d uses).
std::vector<float> mask_for_dilation(index_t d, index_t rf_max);

}  // namespace pit::core
