#include "core/gamma.hpp"

#include <algorithm>

#include "tensor/error.hpp"

namespace pit::core {

index_t num_gamma_levels(index_t rf_max) {
  PIT_CHECK(rf_max >= 1, "num_gamma_levels: rf_max must be >= 1");
  if (rf_max < 2) {
    return 1;
  }
  index_t levels = 1;
  index_t span = rf_max - 1;
  while (span >= 2) {
    span /= 2;
    ++levels;
  }
  return levels;
}

index_t max_dilation(index_t rf_max) {
  return index_t{1} << (num_gamma_levels(rf_max) - 1);
}

index_t dilation_from_bits(const std::vector<int>& bits) {
  // Gamma_i multiplies gamma_1 .. gamma_{L-1-i}; find the smallest i with
  // all of those equal to 1 (i = L-1 is always valid: empty product).
  const auto levels = static_cast<index_t>(bits.size()) + 1;
  for (index_t i = 0; i < levels; ++i) {
    bool all_one = true;
    for (index_t j = 0; j < levels - 1 - i; ++j) {
      if (bits[static_cast<std::size_t>(j)] == 0) {
        all_one = false;
        break;
      }
    }
    if (all_one) {
      return index_t{1} << i;
    }
  }
  return index_t{1} << (levels - 1);
}

std::vector<int> bits_for_dilation(index_t d, index_t rf_max) {
  PIT_CHECK(d >= 1, "bits_for_dilation: d must be >= 1");
  PIT_CHECK((d & (d - 1)) == 0, "bits_for_dilation: d must be a power of two");
  PIT_CHECK(d <= max_dilation(rf_max),
            "bits_for_dilation: d=" << d << " exceeds max dilation "
                                    << max_dilation(rf_max) << " for rf_max "
                                    << rf_max);
  const index_t levels = num_gamma_levels(rf_max);
  index_t log_d = 0;
  while ((index_t{1} << log_d) < d) {
    ++log_d;
  }
  // Trailing log_d knobs at zero: gamma_{L-log_d} .. gamma_{L-1} = 0.
  std::vector<int> bits(static_cast<std::size_t>(levels - 1), 1);
  for (index_t j = levels - 1 - log_d; j < levels - 1; ++j) {
    bits[static_cast<std::size_t>(j)] = 0;
  }
  return bits;
}

GammaParameters::GammaParameters(index_t rf_max)
    : rf_max_(rf_max), levels_(num_gamma_levels(rf_max)) {
  if (num_trainable() > 0) {
    // Paper Sec. III-C: all gamma elements start at 1 (seed has d = 1).
    values_ = Tensor::ones(Shape{num_trainable()});
    values_.set_requires_grad(true);
  }
}

std::vector<int> GammaParameters::binary_snapshot(float threshold) const {
  std::vector<int> bits(static_cast<std::size_t>(num_trainable()), 1);
  if (values_.defined()) {
    const auto view = values_.span();
    for (std::size_t j = 0; j < view.size(); ++j) {
      bits[j] = view[j] >= threshold ? 1 : 0;
    }
  }
  return bits;
}

index_t GammaParameters::dilation(float threshold) const {
  return dilation_from_bits(binary_snapshot(threshold));
}

index_t GammaParameters::alive_taps(float threshold) const {
  return (rf_max_ - 1) / dilation(threshold) + 1;
}

void GammaParameters::clamp_values() {
  if (!values_.defined()) {
    return;
  }
  for (float& v : values_.span()) {
    v = std::clamp(v, 0.0F, 1.0F);
  }
}

void GammaParameters::set_dilation(index_t d) {
  if (!values_.defined()) {
    PIT_CHECK(d == 1, "GammaParameters: no knobs, only d=1 supported");
    return;
  }
  const auto bits = bits_for_dilation(d, rf_max_);
  auto view = values_.span();
  for (std::size_t j = 0; j < view.size(); ++j) {
    view[j] = static_cast<float>(bits[j]);
  }
}

void GammaParameters::freeze() {
  frozen_ = true;
  if (values_.defined()) {
    values_.set_requires_grad(false);
  }
}

}  // namespace pit::core
