// The PIT temporal convolution (paper Eq. 5).
//
// Starts from a maximally-sized undilated filter (rf_max taps) and
// multiplies each time slice with the differentiable mask M built from the
// layer's gamma knobs. Gradients reach the gammas through the mask-product
// chain and the straight-through-estimated binarization, so dilation is
// learned jointly with the weights.
#pragma once

#include <memory>
#include <vector>

#include "core/gamma.hpp"
#include "models/tcn_common.hpp"
#include "nn/module.hpp"
#include "tensor/random.hpp"

namespace pit::core {

/// Functional masked causal convolution: conv(x, W ⊙ M) with the mask
/// broadcast over output/input channels. Differentiable in x, W, bias and
/// M (dL/dM_i aggregates W ⊙ dWeff over channels, feeding the gamma graph).
Tensor masked_causal_conv1d(const Tensor& x, const Tensor& weight,
                            const Tensor& bias, const Tensor& mask,
                            index_t stride);

struct PitConv1dOptions {
  index_t stride = 1;
  bool bias = true;
  /// Heaviside threshold for gamma binarization (paper Eq. 2, delta).
  float binarize_threshold = 0.5F;
};

/// Searchable causal temporal convolution with rf_max taps and learned
/// power-of-two dilation.
class PITConv1d : public nn::Module {
 public:
  PITConv1d(index_t in_channels, index_t out_channels, index_t rf_max,
            const PitConv1dOptions& options, RandomEngine& rng);

  Tensor forward(const Tensor& input) override;

  index_t in_channels() const { return in_channels_; }
  index_t out_channels() const { return out_channels_; }
  index_t rf_max() const { return rf_max_; }
  index_t stride() const { return options_.stride; }
  float binarize_threshold() const { return options_.binarize_threshold; }

  GammaParameters& gamma() { return gamma_; }
  const GammaParameters& gamma() const { return gamma_; }
  Tensor weight() const { return weight_; }
  Tensor bias() const { return bias_; }

  /// Dilation currently encoded by the binarized gammas.
  index_t current_dilation() const;
  /// Taps alive at the current dilation.
  index_t current_alive_taps() const;
  /// Weights + bias that survive at the current dilation (the model-size
  /// cost the paper's Eq. 6 proxies).
  index_t effective_params() const;

  /// Binarizes and freezes the gammas (end of the pruning phase); the mask
  /// becomes a constant and forward passes stop building the gamma graph.
  void freeze_gamma();

 private:
  index_t in_channels_;
  index_t out_channels_;
  index_t rf_max_;
  PitConv1dOptions options_;
  Tensor weight_;  // (Cout, Cin, rf_max)
  Tensor bias_;
  GammaParameters gamma_;
  Tensor frozen_mask_;  // constant mask after freeze_gamma()
};

/// ConvFactory adapter: builds PITConv1d seeds (kernel = receptive field,
/// dilation = 1) from hand-tuned specs and records the created layers in
/// `out_layers` (non-owning, in creation order) for the trainer/regularizer.
models::ConvFactory pit_conv_factory(RandomEngine& rng,
                                     std::vector<PITConv1d*>& out_layers,
                                     PitConv1dOptions options = {});

/// The PITConv1d layers among a model's temporal convs, in order.
std::vector<PITConv1d*> collect_pit_layers(
    const std::vector<nn::Module*>& temporal_convs);

}  // namespace pit::core
