// int8 post-training quantization (the paper deploys int8 models through
// GreenWaves' NN-Tool; this module is our stand-in for that flow).
//
// Weights use per-tensor symmetric quantization (zero point 0); activations
// use per-tensor affine quantization calibrated from observed ranges. A
// quantized conv kernel with int32 accumulation validates that the numeric
// behaviour survives the int8 round trip, and fake-quantization utilities
// let any trained float model be evaluated "as deployed".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace pit::quant {

/// Smallest representable calibration scale. A degenerate observed range
/// (all-constant input, denormal spread, or an empty tensor) must never
/// produce a zero, denormal, or infinite scale — 1/scale is used in every
/// quantize step, so the scale is clamped here instead of trusting the
/// data.
inline constexpr float kMinScale = 1e-8F;

struct QuantParams {
  float scale = 1.0F;
  std::int32_t zero_point = 0;

  float dequantize(std::int32_t q) const {
    return scale * static_cast<float>(q - zero_point);
  }
  std::int8_t quantize(float v) const;
};

/// Symmetric int8 parameters from the max absolute value (weights).
/// Degenerate inputs (empty span, all-zero values) yield the identity
/// scale 1; a tiny but non-zero range is clamped to kMinScale.
QuantParams calibrate_symmetric(std::span<const float> values);

/// Affine int8 parameters from the [min, max] range (activations).
/// Degenerate inputs are guarded the same way as calibrate_symmetric.
QuantParams calibrate_affine(std::span<const float> values);

/// Affine int8 parameters from an explicit [lo, hi] range (e.g. a range
/// accumulated by a RangeObserver over many calibration batches). The
/// range is widened to include zero and clamped to kMinScale.
QuantParams affine_from_range(float lo, float hi);

/// Affine *uint8* parameters from an explicit [lo, hi] range: real value
/// = scale * (q - zero_point) with q in [0, 255] and zero_point in
/// [0, 255]. This is the activation encoding of the quantized compiled
/// runtime (unsigned activations feed the u8 x s8 dot-product kernels).
QuantParams affine_u8_from_range(float lo, float hi);

/// Quantizes to the u8 encoding of affine_u8_from_range: round-to-nearest
/// of v/scale + zero_point, clamped to [0, 255].
std::uint8_t quantize_u8(float v, const QuantParams& params);

std::vector<std::int8_t> quantize_tensor(std::span<const float> values,
                                         const QuantParams& params);
std::vector<float> dequantize_tensor(std::span<const std::int8_t> values,
                                     const QuantParams& params);

/// Worst-case absolute error of the round trip: <= scale/2 within range.
double max_roundtrip_error(std::span<const float> values,
                           const QuantParams& params);

/// int8 causal dilated convolution with int32 accumulators, matching the
/// float reference within quantization error. x is (N, C, T) float (it is
/// quantized internally with `x_quant`); the weight is quantized with
/// per-tensor symmetric parameters; the float output is reconstructed.
Tensor quantized_causal_conv1d(const Tensor& x, const Tensor& weight,
                               const Tensor& bias, index_t dilation,
                               index_t stride, const QuantParams& x_quant);

/// Rounds every parameter of the module through int8 in place (symmetric
/// per-tensor), simulating deployed weights. Returns the worst per-tensor
/// round-trip error.
double fake_quantize_parameters(nn::Module& model);

/// int8 model size in bytes: one byte per parameter (biases are kept at
/// int32 by deployment flows; `int32_bias_params` counts those).
index_t int8_model_bytes(index_t params, index_t int32_bias_params = 0);

}  // namespace pit::quant
