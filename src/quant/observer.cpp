#include "quant/observer.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/error.hpp"

namespace pit::quant {

namespace {

/// First-batch headroom: the frozen histogram covers 4x the first batch's
/// spread so later batches rarely saturate the edge bins.
constexpr float kHistogramHeadroom = 4.0F;

}  // namespace

RangeObserver::RangeObserver(ObserverConfig config) : config_(config) {
  PIT_CHECK(config_.percentile > 0.5 && config_.percentile <= 1.0,
            "RangeObserver: percentile " << config_.percentile
                                         << " outside (0.5, 1]");
  PIT_CHECK(config_.histogram_bins >= 16,
            "RangeObserver: need >= 16 histogram bins, got "
                << config_.histogram_bins);
}

void RangeObserver::observe(std::span<const float> values) {
  if (values.empty()) {
    return;
  }
  float lo = values[0];
  float hi = values[0];
  for (const float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (count_ == 0) {
    min_ = lo;
    max_ = hi;
  } else {
    min_ = std::min(min_, lo);
    max_ = std::max(max_, hi);
  }
  count_ += values.size();

  if (config_.kind != ObserverKind::kPercentile) {
    return;
  }
  if (!hist_frozen_) {
    // Freeze bounds on the first batch, widened so the tails of later
    // batches still resolve; values beyond them clamp to the edge bins,
    // which only makes the percentile estimate more conservative.
    const float spread = std::max(hi - lo, kMinScale);
    const float pad = (kHistogramHeadroom - 1.0F) * 0.5F * spread;
    hist_lo_ = lo - pad;
    hist_hi_ = hi + pad;
    counts_.assign(static_cast<std::size_t>(config_.histogram_bins), 0);
    hist_frozen_ = true;
  }
  const float inv_width = static_cast<float>(config_.histogram_bins) /
                          (hist_hi_ - hist_lo_);
  const int last = config_.histogram_bins - 1;
  for (const float v : values) {
    const int bin = static_cast<int>((v - hist_lo_) * inv_width);
    counts_[static_cast<std::size_t>(std::clamp(bin, 0, last))] += 1;
  }
}

void RangeObserver::calibrated_range(float* lo, float* hi) const {
  PIT_CHECK(seen(), "RangeObserver: no values observed");
  *lo = min_;
  *hi = max_;
  if (config_.kind != ObserverKind::kPercentile || count_ < 16) {
    return;
  }
  // Walk the histogram in from both ends until each tail holds more than
  // (1 - percentile) of the mass; bin edges give the clipped range.
  const auto tail_budget = static_cast<std::uint64_t>(
      (1.0 - config_.percentile) * static_cast<double>(count_));
  const float width = (hist_hi_ - hist_lo_) /
                      static_cast<float>(config_.histogram_bins);
  std::uint64_t mass = 0;
  int lo_bin = 0;
  for (; lo_bin < config_.histogram_bins - 1; ++lo_bin) {
    mass += counts_[static_cast<std::size_t>(lo_bin)];
    if (mass > tail_budget) {
      break;
    }
  }
  mass = 0;
  int hi_bin = config_.histogram_bins - 1;
  for (; hi_bin > lo_bin; --hi_bin) {
    mass += counts_[static_cast<std::size_t>(hi_bin)];
    if (mass > tail_budget) {
      break;
    }
  }
  // Clip is only ever a *narrowing* of the observed min/max.
  *lo = std::max(min_, hist_lo_ + width * static_cast<float>(lo_bin));
  *hi = std::min(max_, hist_lo_ + width * static_cast<float>(hi_bin + 1));
}

QuantParams RangeObserver::affine_u8_params() const {
  float lo = 0.0F;
  float hi = 0.0F;
  calibrated_range(&lo, &hi);
  return affine_u8_from_range(lo, hi);
}

}  // namespace pit::quant
