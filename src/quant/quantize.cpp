#include "quant/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "nn/conv1d.hpp"
#include "tensor/error.hpp"

namespace pit::quant {

std::int8_t QuantParams::quantize(float v) const {
  const float q = std::round(v / scale) + static_cast<float>(zero_point);
  return static_cast<std::int8_t>(std::clamp(q, -128.0F, 127.0F));
}

QuantParams calibrate_symmetric(std::span<const float> values) {
  PIT_CHECK(!values.empty(), "calibrate_symmetric: empty tensor");
  float max_abs = 0.0F;
  for (const float v : values) {
    max_abs = std::max(max_abs, std::fabs(v));
  }
  QuantParams params;
  params.scale = max_abs > 0.0F ? max_abs / 127.0F : 1.0F;
  params.zero_point = 0;
  return params;
}

QuantParams calibrate_affine(std::span<const float> values) {
  PIT_CHECK(!values.empty(), "calibrate_affine: empty tensor");
  float lo = values[0];
  float hi = values[0];
  for (const float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  lo = std::min(lo, 0.0F);  // representable zero, as inference libs require
  hi = std::max(hi, 0.0F);
  QuantParams params;
  const float range = hi - lo;
  params.scale = range > 0.0F ? range / 255.0F : 1.0F;
  params.zero_point =
      static_cast<std::int32_t>(std::round(-128.0F - lo / params.scale));
  params.zero_point = std::clamp(params.zero_point, -128, 127);
  return params;
}

std::vector<std::int8_t> quantize_tensor(std::span<const float> values,
                                         const QuantParams& params) {
  std::vector<std::int8_t> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = params.quantize(values[i]);
  }
  return out;
}

std::vector<float> dequantize_tensor(std::span<const std::int8_t> values,
                                     const QuantParams& params) {
  std::vector<float> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = params.dequantize(values[i]);
  }
  return out;
}

double max_roundtrip_error(std::span<const float> values,
                           const QuantParams& params) {
  double worst = 0.0;
  for (const float v : values) {
    const float back = params.dequantize(params.quantize(v));
    worst = std::max(worst, static_cast<double>(std::fabs(back - v)));
  }
  return worst;
}

Tensor quantized_causal_conv1d(const Tensor& x, const Tensor& weight,
                               const Tensor& bias, index_t dilation,
                               index_t stride, const QuantParams& x_quant) {
  PIT_CHECK(x.rank() == 3 && weight.rank() == 3,
            "quantized_causal_conv1d: bad ranks");
  PIT_CHECK(x.dim(1) == weight.dim(1), "quantized_causal_conv1d: Cin");
  const QuantParams w_quant = calibrate_symmetric(weight.span());
  const auto xq = quantize_tensor(x.span(), x_quant);
  const auto wq = quantize_tensor(weight.span(), w_quant);

  const index_t n = x.dim(0);
  const index_t cin = x.dim(1);
  const index_t t_in = x.dim(2);
  const index_t cout = weight.dim(0);
  const index_t k = weight.dim(2);
  const index_t t_out = nn::causal_conv1d_output_steps(t_in, stride);

  Tensor out = Tensor::zeros(Shape{n, cout, t_out});
  const float out_scale = x_quant.scale * w_quant.scale;
  for (index_t ni = 0; ni < n; ++ni) {
    for (index_t co = 0; co < cout; ++co) {
      for (index_t t = 0; t < t_out; ++t) {
        std::int64_t acc = 0;  // int32 accumulator semantics (no overflow
                               // at our sizes; int64 keeps the check simple)
        for (index_t ci = 0; ci < cin; ++ci) {
          for (index_t i = 0; i < k; ++i) {
            const index_t src = t * stride - i * dilation;
            if (src < 0) {
              continue;
            }
            const std::int32_t xv =
                xq[static_cast<std::size_t>((ni * cin + ci) * t_in + src)] -
                x_quant.zero_point;
            const std::int32_t wv =
                wq[static_cast<std::size_t>((co * cin + ci) * k + i)];
            acc += static_cast<std::int64_t>(xv) * wv;
          }
        }
        float value = out_scale * static_cast<float>(acc);
        if (bias.defined()) {
          value += bias.data()[co];
        }
        out.data()[(ni * cout + co) * t_out + t] = value;
      }
    }
  }
  return out;
}

double fake_quantize_parameters(nn::Module& model) {
  double worst = 0.0;
  for (const nn::NamedParameter& p : model.named_parameters()) {
    Tensor value = p.value;
    const QuantParams params = calibrate_symmetric(value.span());
    worst = std::max(worst, max_roundtrip_error(value.span(), params));
    for (float& v : value.span()) {
      v = params.dequantize(params.quantize(v));
    }
  }
  return worst;
}

index_t int8_model_bytes(index_t params, index_t int32_bias_params) {
  PIT_CHECK(params >= int32_bias_params,
            "int8_model_bytes: more biases than parameters");
  return (params - int32_bias_params) + 4 * int32_bias_params;
}

}  // namespace pit::quant
