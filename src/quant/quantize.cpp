#include "quant/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "nn/conv1d.hpp"
#include "tensor/error.hpp"

namespace pit::quant {

std::int8_t QuantParams::quantize(float v) const {
  const float q = std::round(v / scale) + static_cast<float>(zero_point);
  return static_cast<std::int8_t>(std::clamp(q, -128.0F, 127.0F));
}

QuantParams calibrate_symmetric(std::span<const float> values) {
  // Degenerate inputs (empty tensor, all zeros) quantize everything to 0;
  // the identity scale keeps the params usable instead of dividing by the
  // observed (zero) range.
  float max_abs = 0.0F;
  for (const float v : values) {
    max_abs = std::max(max_abs, std::fabs(v));
  }
  QuantParams params;
  params.scale = max_abs > 0.0F ? std::max(max_abs / 127.0F, kMinScale) : 1.0F;
  params.zero_point = 0;
  return params;
}

QuantParams calibrate_affine(std::span<const float> values) {
  if (values.empty()) {
    return {};  // identity scale, zero point 0
  }
  float lo = values[0];
  float hi = values[0];
  for (const float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return affine_from_range(lo, hi);
}

namespace {

/// Shared affine calibration over a [lo, hi] range for a quantized
/// integer domain [q_lo, q_hi]: widens the range to include zero and
/// clamps degenerate (all-constant / denormal-width) ranges to kMinScale
/// — a zero/denormal scale's reciprocal would overflow the zero point.
QuantParams affine_from_range_impl(float lo, float hi, std::int32_t q_lo,
                                   std::int32_t q_hi) {
  PIT_CHECK(lo <= hi, "affine_from_range: lo " << lo << " > hi " << hi);
  lo = std::min(lo, 0.0F);  // representable zero, as inference libs require
  hi = std::max(hi, 0.0F);
  QuantParams params;
  const float range = hi - lo;
  params.scale =
      range > 0.0F
          ? std::max(range / static_cast<float>(q_hi - q_lo), kMinScale)
          : 1.0F;
  params.zero_point = static_cast<std::int32_t>(
      std::round(static_cast<float>(q_lo) - lo / params.scale));
  params.zero_point = std::clamp(params.zero_point, q_lo, q_hi);
  return params;
}

}  // namespace

QuantParams affine_from_range(float lo, float hi) {
  return affine_from_range_impl(lo, hi, -128, 127);
}

QuantParams affine_u8_from_range(float lo, float hi) {
  return affine_from_range_impl(lo, hi, 0, 255);
}

std::uint8_t quantize_u8(float v, const QuantParams& params) {
  // Same arithmetic as the runtime kernels' stores (multiply by the
  // reciprocal, lrintf round-to-nearest-even) so this helper predicts the
  // staged bytes, ties included.
  const long q =
      std::lrintf(v * (1.0F / params.scale)) + params.zero_point;
  return static_cast<std::uint8_t>(std::clamp(q, 0L, 255L));
}

std::vector<std::int8_t> quantize_tensor(std::span<const float> values,
                                         const QuantParams& params) {
  std::vector<std::int8_t> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = params.quantize(values[i]);
  }
  return out;
}

std::vector<float> dequantize_tensor(std::span<const std::int8_t> values,
                                     const QuantParams& params) {
  std::vector<float> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = params.dequantize(values[i]);
  }
  return out;
}

double max_roundtrip_error(std::span<const float> values,
                           const QuantParams& params) {
  double worst = 0.0;
  for (const float v : values) {
    const float back = params.dequantize(params.quantize(v));
    worst = std::max(worst, static_cast<double>(std::fabs(back - v)));
  }
  return worst;
}

Tensor quantized_causal_conv1d(const Tensor& x, const Tensor& weight,
                               const Tensor& bias, index_t dilation,
                               index_t stride, const QuantParams& x_quant) {
  PIT_CHECK(x.rank() == 3 && weight.rank() == 3,
            "quantized_causal_conv1d: bad ranks");
  PIT_CHECK(x.dim(1) == weight.dim(1), "quantized_causal_conv1d: Cin");
  const QuantParams w_quant = calibrate_symmetric(weight.span());
  const auto xq = quantize_tensor(x.span(), x_quant);
  const auto wq = quantize_tensor(weight.span(), w_quant);

  const index_t n = x.dim(0);
  const index_t cin = x.dim(1);
  const index_t t_in = x.dim(2);
  const index_t cout = weight.dim(0);
  const index_t k = weight.dim(2);
  const index_t t_out = nn::causal_conv1d_output_steps(t_in, stride);

  Tensor out = Tensor::zeros(Shape{n, cout, t_out});
  const float out_scale = x_quant.scale * w_quant.scale;
  for (index_t ni = 0; ni < n; ++ni) {
    for (index_t co = 0; co < cout; ++co) {
      for (index_t t = 0; t < t_out; ++t) {
        std::int64_t acc = 0;  // int32 accumulator semantics (no overflow
                               // at our sizes; int64 keeps the check simple)
        for (index_t ci = 0; ci < cin; ++ci) {
          for (index_t i = 0; i < k; ++i) {
            const index_t src = t * stride - i * dilation;
            if (src < 0) {
              continue;
            }
            const std::int32_t xv =
                xq[static_cast<std::size_t>((ni * cin + ci) * t_in + src)] -
                x_quant.zero_point;
            const std::int32_t wv =
                wq[static_cast<std::size_t>((co * cin + ci) * k + i)];
            acc += static_cast<std::int64_t>(xv) * wv;
          }
        }
        float value = out_scale * static_cast<float>(acc);
        if (bias.defined()) {
          value += bias.data()[co];
        }
        out.data()[(ni * cout + co) * t_out + t] = value;
      }
    }
  }
  return out;
}

double fake_quantize_parameters(nn::Module& model) {
  double worst = 0.0;
  for (const nn::NamedParameter& p : model.named_parameters()) {
    Tensor value = p.value;
    const QuantParams params = calibrate_symmetric(value.span());
    worst = std::max(worst, max_roundtrip_error(value.span(), params));
    for (float& v : value.span()) {
      v = params.dequantize(params.quantize(v));
    }
  }
  return worst;
}

index_t int8_model_bytes(index_t params, index_t int32_bias_params) {
  PIT_CHECK(params >= int32_bias_params,
            "int8_model_bytes: more biases than parameters");
  return (params - int32_bias_params) + 4 * int32_bias_params;
}

}  // namespace pit::quant
