// Activation-range observers for post-training calibration.
//
// The quantized compiled runtime (runtime/quantize_plan.hpp) runs the fp32
// plan over a calibration set and feeds every intermediate activation
// tensor through one RangeObserver per value. After the sweep the observer
// yields the affine u8 parameters that value will be stored with.
//
// Two policies:
//   - kMinMax (default): the exact observed [min, max]. Deterministic and
//     tight on well-behaved data, but a single outlier stretches the range
//     and wastes quantization resolution on values that almost never occur.
//   - kPercentile: clip the range to the [1-p, p] quantile of the observed
//     distribution, approximated with a fixed histogram whose bounds are
//     frozen after the first batch (values beyond the frozen bounds land
//     in the edge bins). Everything is counting — no randomness — so the
//     same calibration stream always produces bit-identical parameters.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "quant/quantize.hpp"

namespace pit::quant {

enum class ObserverKind {
  kMinMax = 0,
  kPercentile = 1,
};

struct ObserverConfig {
  ObserverKind kind = ObserverKind::kMinMax;
  /// Quantile kept per tail under kPercentile (0.5 < percentile <= 1).
  double percentile = 0.999;
  /// Histogram resolution under kPercentile.
  int histogram_bins = 2048;
};

/// Accumulates the value distribution of one activation tensor across
/// calibration batches. observe() may be called any number of times;
/// order of values within a call does not affect the result.
class RangeObserver {
 public:
  explicit RangeObserver(ObserverConfig config = {});

  void observe(std::span<const float> values);

  /// True once observe() has seen at least one value.
  bool seen() const { return count_ > 0; }
  std::uint64_t count() const { return count_; }
  float min() const { return min_; }
  float max() const { return max_; }

  /// The calibrated [lo, hi] range under the configured policy. Requires
  /// seen(); a percentile observer falls back to min/max while the
  /// histogram holds fewer than a handful of values.
  void calibrated_range(float* lo, float* hi) const;

  /// Affine u8 parameters over calibrated_range() (the runtime's
  /// activation encoding). Degenerate ranges are clamped by
  /// affine_u8_from_range. Requires seen().
  QuantParams affine_u8_params() const;

 private:
  ObserverConfig config_;
  std::uint64_t count_ = 0;
  float min_ = 0.0F;
  float max_ = 0.0F;
  // Percentile histogram: bounds frozen after the first batch (widened by
  // a factor so later batches rarely clip), counts thereafter.
  bool hist_frozen_ = false;
  float hist_lo_ = 0.0F;
  float hist_hi_ = 0.0F;
  std::vector<std::uint64_t> counts_;
};

}  // namespace pit::quant
