#include "runtime/compiled_net.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "nn/kernels/kernels.hpp"
#include "runtime/arena.hpp"
#include "tensor/error.hpp"

namespace pit::runtime {

namespace {

// Below this many output floats an op runs serially: the OpenMP fork costs
// more than the loop (same spirit as the kernel engine's MAC threshold).
constexpr index_t kParallelMinFloats = 16384;

/// An operand's buffer at run time: `p` points at the logical (row 0,
/// t = 0) element; consecutive channel rows are `stride` floats apart.
struct RowSpan {
  float* p = nullptr;
  index_t stride = 0;
};

void relu_inplace(float* y, index_t count) {
#pragma omp parallel for schedule(static) if (count >= kParallelMinFloats)
  for (index_t i = 0; i < count; ++i) {
    y[i] = y[i] > 0.0F ? y[i] : 0.0F;
  }
}

void exec_conv(const detail::Op& op, const float* params, RowSpan x,
               RowSpan y, index_t n, bool x_padded) {
  nn::kernels::ConvDims dims{};
  dims.n = n;
  dims.c_in = op.c_in;
  dims.c_out = op.c_out;
  dims.k = op.k;
  dims.t_in = op.t_in;
  dims.t_out = op.t_out;
  dims.dilation = op.dilation;
  dims.stride = op.stride;
  if (op.packed) {
    // Stride-1 fast path: overwrite semantics with bias and ReLU fused
    // into the kernel's store — no zero-fill, no separate activation pass.
    nn::kernels::conv_forward_packed(
        x.p, params + op.w_off,
        op.b_off >= 0 ? params + op.b_off : nullptr, y.p, dims, x.stride,
        y.stride, x_padded, op.relu);
    return;
  }
  // Strided convs take the training kernels (dense layouts only), which
  // accumulate: seed the output with the bias (or zero) instead of paying
  // a zero-fill plus an in-kernel bias pass.
  PIT_CHECK(x.stride == op.t_in && y.stride == op.t_out,
            "CompiledPlan: strided conv requires dense operand layouts");
  const index_t out_floats = n * op.c_out * op.t_out;
  if (op.b_off >= 0) {
    const float* b = params + op.b_off;
#pragma omp parallel for collapse(2) schedule(static) \
    if (out_floats >= kParallelMinFloats)
    for (index_t ni = 0; ni < n; ++ni) {
      for (index_t co = 0; co < op.c_out; ++co) {
        float* row = y.p + (ni * op.c_out + co) * op.t_out;
        std::fill(row, row + op.t_out, b[co]);
      }
    }
  } else {
    std::fill(y.p, y.p + out_floats, 0.0F);
  }
  nn::kernels::conv_forward(x.p, params + op.w_off, nullptr, y.p, dims);
  if (op.relu) {
    relu_inplace(y.p, out_floats);
  }
}

void exec_linear(const detail::Op& op, const float* params, RowSpan x,
                 RowSpan y, index_t n) {
  // Dense, contiguous operands — guaranteed at compile time (flatten is
  // only legal over dense storage, and dense writers cannot produce
  // padded values), so the buffers are exactly the (n, f) / (n, o)
  // matrices the kernel wants; the row strides are irrelevant here.
  nn::kernels::linear_forward(x.p, params + op.w_off,
                              op.b_off >= 0 ? params + op.b_off : nullptr,
                              y.p, n, op.c_in, op.c_out, op.relu);
}

void exec_avg_pool(const detail::Op& op, RowSpan x, RowSpan y, index_t n) {
  const index_t rows = n * op.c_out;  // pooling keeps the channel count
  const float inv_k = 1.0F / static_cast<float>(op.k);
#pragma omp parallel for schedule(static) \
    if (rows * op.t_out >= kParallelMinFloats)
  for (index_t r = 0; r < rows; ++r) {
    const float* xrow = x.p + r * x.stride;
    float* yrow = y.p + r * y.stride;
    for (index_t to = 0; to < op.t_out; ++to) {
      float acc = 0.0F;
      for (index_t k = 0; k < op.k; ++k) {
        acc += xrow[to * op.stride + k];
      }
      yrow[to] = acc * inv_k;
    }
  }
}

void exec_add(const detail::Op& op, RowSpan a, RowSpan b, RowSpan y,
              index_t n) {
  const index_t rows = n * op.c_out;
  const index_t steps = op.t_out;
  const bool fuse_relu = op.relu;
#pragma omp parallel for schedule(static) \
    if (rows * steps >= kParallelMinFloats)
  for (index_t r = 0; r < rows; ++r) {
    const float* arow = a.p + r * a.stride;
    const float* brow = b.p + r * b.stride;
    float* yrow = y.p + r * y.stride;
    for (index_t t = 0; t < steps; ++t) {
      const float s = arow[t] + brow[t];
      yrow[t] = fuse_relu && s < 0.0F ? 0.0F : s;
    }
  }
}

/// Ring slots a streaming conv keeps per input channel: the current input
/// plus the (k-1)*dilation past steps its oldest tap reaches back to.
index_t ring_span(const detail::Op& op) {
  return (op.k - 1) * op.dilation + 1;
}

}  // namespace

FrozenConv freeze_conv(const nn::Conv1d& conv) {
  FrozenConv out;
  out.c_in = conv.in_channels();
  out.c_out = conv.out_channels();
  out.k = conv.kernel_size();
  out.dilation = conv.dilation();
  out.stride = conv.stride();
  const auto w = conv.weight().span();
  out.weight.assign(w.begin(), w.end());
  if (conv.has_bias()) {
    const auto b = conv.bias().span();
    out.bias.assign(b.begin(), b.end());
  }
  return out;
}

void fold_batchnorm(FrozenConv& conv, const nn::BatchNorm1d& bn) {
  PIT_CHECK(bn.num_features() == conv.c_out,
            "fold_batchnorm: " << bn.num_features() << " BN features for "
                               << conv.c_out << " conv channels");
  const float* g = bn.gamma().data();
  const float* beta = bn.beta().data();
  const float* mean = bn.running_mean().data();
  const float* var = bn.running_var().data();
  if (conv.bias.empty()) {
    conv.bias.assign(static_cast<std::size_t>(conv.c_out), 0.0F);
  }
  const index_t per_channel = conv.c_in * conv.k;
  for (index_t co = 0; co < conv.c_out; ++co) {
    const float scale = g[co] / std::sqrt(var[co] + bn.eps());
    float* wrow = conv.weight.data() + co * per_channel;
    for (index_t i = 0; i < per_channel; ++i) {
      wrow[i] *= scale;
    }
    conv.bias[static_cast<std::size_t>(co)] =
        scale * (conv.bias[static_cast<std::size_t>(co)] - mean[co]) +
        beta[co];
  }
}

// ---- NetBuilder ----------------------------------------------------------

ValueId NetBuilder::new_value(index_t channels, index_t steps,
                              ValueId alias_of) {
  values_.push_back({channels, steps, alias_of});
  return static_cast<ValueId>(values_.size()) - 1;
}

const detail::Value& NetBuilder::value(ValueId v) const {
  PIT_CHECK(v >= 0 && v < static_cast<ValueId>(values_.size()),
            "NetBuilder: unknown value " << v);
  return values_[static_cast<std::size_t>(v)];
}

index_t NetBuilder::push_params(const float* data, index_t count) {
  const auto off = static_cast<index_t>(params_.size());
  params_.insert(params_.end(), data, data + count);
  return off;
}

ValueId NetBuilder::input(index_t channels, index_t steps) {
  PIT_CHECK(input_ < 0, "NetBuilder: input already declared");
  PIT_CHECK(channels >= 1 && steps >= 1,
            "NetBuilder: input " << channels << "x" << steps);
  input_ = new_value(channels, steps);
  return input_;
}

ValueId NetBuilder::conv(ValueId x, const FrozenConv& c, bool fuse_relu) {
  const detail::Value& in = value(x);
  PIT_CHECK(in.channels == c.c_in, "NetBuilder::conv: input has "
                                       << in.channels << " channels, conv "
                                       << c.c_in);
  PIT_CHECK(c.k >= 1 && c.dilation >= 1 && c.stride >= 1,
            "NetBuilder::conv: bad geometry");
  PIT_CHECK(static_cast<index_t>(c.weight.size()) == c.c_out * c.c_in * c.k,
            "NetBuilder::conv: weight size " << c.weight.size());
  PIT_CHECK(c.bias.empty() ||
                static_cast<index_t>(c.bias.size()) == c.c_out,
            "NetBuilder::conv: bias size " << c.bias.size());
  detail::Op op;
  op.kind = detail::OpKind::kConv;
  op.in0 = x;
  op.relu = fuse_relu;
  op.c_in = c.c_in;
  op.c_out = c.c_out;
  op.k = c.k;
  op.dilation = c.dilation;
  op.stride = c.stride;
  op.t_in = in.steps;
  op.t_out = nn::causal_conv1d_output_steps(in.steps, c.stride);
  if (c.stride == 1) {
    // Stride-1 convs (the TCN hot path) get the inference-packed weight
    // layout so execution takes conv_forward_packed.
    op.packed = true;
    nn::kernels::ConvDims dims{};
    dims.c_in = c.c_in;
    dims.c_out = c.c_out;
    dims.k = c.k;
    const index_t packed_floats = nn::kernels::packed_weight_floats(dims);
    op.w_off = static_cast<index_t>(params_.size());
    params_.resize(params_.size() + static_cast<std::size_t>(packed_floats));
    nn::kernels::pack_conv_weight(c.weight.data(), dims,
                                  params_.data() + op.w_off);
  } else {
    op.w_off = push_params(c.weight.data(),
                           static_cast<index_t>(c.weight.size()));
  }
  op.b_off = c.bias.empty()
                 ? -1
                 : push_params(c.bias.data(),
                               static_cast<index_t>(c.bias.size()));
  op.out = new_value(c.c_out, op.t_out);
  ops_.push_back(op);
  return op.out;
}

ValueId NetBuilder::linear(ValueId x, const Tensor& weight, const Tensor& bias,
                           bool fuse_relu) {
  const detail::Value& in = value(x);
  PIT_CHECK(in.steps == 1,
            "NetBuilder::linear: input must be flat (steps == 1), got "
                << in.channels << "x" << in.steps << " — flatten() first");
  PIT_CHECK(weight.rank() == 2 && weight.dim(1) == in.channels,
            "NetBuilder::linear: weight " << weight.shape().to_string()
                                          << " for " << in.channels
                                          << " features");
  detail::Op op;
  op.kind = detail::OpKind::kLinear;
  op.in0 = x;
  op.relu = fuse_relu;
  op.c_in = weight.dim(1);
  op.c_out = weight.dim(0);
  op.t_in = 1;
  op.t_out = 1;
  op.w_off = push_params(weight.data(), weight.numel());
  op.b_off = -1;
  if (bias.defined()) {
    PIT_CHECK(bias.rank() == 1 && bias.dim(0) == op.c_out,
              "NetBuilder::linear: bias " << bias.shape().to_string());
    op.b_off = push_params(bias.data(), bias.numel());
  }
  op.out = new_value(op.c_out, 1);
  ops_.push_back(op);
  return op.out;
}

ValueId NetBuilder::avg_pool(ValueId x, index_t kernel, index_t stride) {
  const detail::Value& in = value(x);
  PIT_CHECK(kernel >= 1 && stride >= 1 && in.steps >= kernel,
            "NetBuilder::avg_pool: kernel=" << kernel << " stride=" << stride
                                            << " over " << in.steps
                                            << " steps");
  detail::Op op;
  op.kind = detail::OpKind::kAvgPool;
  op.in0 = x;
  op.c_in = in.channels;
  op.c_out = in.channels;
  op.k = kernel;
  op.stride = stride;
  op.t_in = in.steps;
  op.t_out = (in.steps - kernel) / stride + 1;
  op.out = new_value(in.channels, op.t_out);
  ops_.push_back(op);
  return op.out;
}

ValueId NetBuilder::add(ValueId a, ValueId b, bool fuse_relu) {
  const detail::Value& va = value(a);
  const detail::Value& vb = value(b);
  PIT_CHECK(va.channels == vb.channels && va.steps == vb.steps,
            "NetBuilder::add: shape mismatch " << va.channels << "x" << va.steps
                                               << " vs " << vb.channels << "x"
                                               << vb.steps);
  detail::Op op;
  op.kind = detail::OpKind::kAdd;
  op.in0 = a;
  op.in1 = b;
  op.relu = fuse_relu;
  op.c_in = va.channels;
  op.c_out = va.channels;
  op.t_in = va.steps;
  op.t_out = va.steps;
  op.out = new_value(va.channels, va.steps);
  ops_.push_back(op);
  return op.out;
}

ValueId NetBuilder::flatten(ValueId x) {
  const detail::Value& in = value(x);
  return new_value(in.channels * in.steps, 1, x);
}

CompiledPlan NetBuilder::compile(ValueId output) && {
  PIT_CHECK(input_ >= 0, "NetBuilder: no input declared");
  PIT_CHECK(output >= 0 && output < static_cast<ValueId>(values_.size()),
            "NetBuilder: unknown output value " << output);
  PIT_CHECK(!ops_.empty(), "NetBuilder: empty network");

  CompiledPlan net;
  net.ops_ = std::move(ops_);
  net.values_ = std::move(values_);
  net.params_ = std::move(params_);
  net.input_ = input_;
  net.output_ = output;

  // Resolve alias chains to storage roots (aliases only point backwards).
  net.root_.resize(net.values_.size());
  for (std::size_t v = 0; v < net.values_.size(); ++v) {
    const ValueId a = net.values_[v].alias_of;
    net.root_[v] = a < 0 ? static_cast<ValueId>(v)
                         : net.root_[static_cast<std::size_t>(a)];
  }
  const ValueId in_root = net.root_[static_cast<std::size_t>(net.input_)];
  const ValueId out_root = net.root_[static_cast<std::size_t>(net.output_)];
  PIT_CHECK(out_root != in_root,
            "NetBuilder: the output aliases the input; nothing to execute");
  PIT_CHECK(net.values_[static_cast<std::size_t>(net.output_)].alias_of < 0,
            "NetBuilder: the output must be an op result, not a flatten "
            "view");

  // Liveness per storage root: defined by its producing op, dead after its
  // last reader. The input and output live in external buffers.
  std::vector<int> def(net.values_.size(), -1);
  std::vector<int> last(net.values_.size(), -1);
  for (std::size_t i = 0; i < net.ops_.size(); ++i) {
    const detail::Op& op = net.ops_[i];
    const auto touch = [&](ValueId v, std::vector<int>& slot) {
      if (v >= 0) {
        slot[static_cast<std::size_t>(
            net.root_[static_cast<std::size_t>(v)])] = static_cast<int>(i);
      }
    };
    touch(op.in0, last);
    touch(op.in1, last);
    touch(op.out, def);
  }
  PIT_CHECK(def[static_cast<std::size_t>(out_root)] >= 0,
            "NetBuilder: output is not produced by any op");

  // Row layouts. Every value a packed conv reads is planned padded:
  // (k-1)*dilation zeroed lead floats per channel row (the implicit
  // causal padding, materialized once) plus a register tile of tail
  // slack, so the kernel never does per-tap bounds work.
  const std::size_t nv = net.values_.size();
  net.lead_.assign(nv, 0);
  net.slack_.assign(nv, 0);
  for (const detail::Op& op : net.ops_) {
    if (op.kind == detail::OpKind::kConv && op.packed) {
      const auto r =
          static_cast<std::size_t>(net.root_[static_cast<std::size_t>(op.in0)]);
      net.lead_[r] = std::max(net.lead_[r], (op.k - 1) * op.dilation);
      net.slack_[r] = nn::kernels::kPackTimeTile;
    }
  }
  // The output lives in the returned dense tensor; padding it is not
  // supported (no consumer could need it anyway — it feeds no op).
  PIT_CHECK(net.lead_[static_cast<std::size_t>(out_root)] == 0 &&
                net.slack_[static_cast<std::size_t>(out_root)] == 0,
            "NetBuilder: the network output cannot feed a packed conv");
  // Flatten aliases reinterpret rows as one contiguous block: only legal
  // over dense storage.
  for (std::size_t v = 0; v < nv; ++v) {
    if (net.values_[v].alias_of >= 0) {
      const auto r = static_cast<std::size_t>(net.root_[v]);
      PIT_CHECK(net.lead_[r] == 0 && net.slack_[r] == 0,
                "NetBuilder: flatten of a conv-consumed (padded) value is "
                "not supported");
    }
  }
  // Ops that can only write dense rows must not produce padded values,
  // and ops that can only read dense rows must not consume them — catch
  // both at compile time rather than on the first forward().
  for (const detail::Op& op : net.ops_) {
    const bool dense_only =
        op.kind == detail::OpKind::kLinear ||
        (op.kind == detail::OpKind::kConv && !op.packed);
    if (dense_only) {
      const auto out_r =
          static_cast<std::size_t>(net.root_[static_cast<std::size_t>(op.out)]);
      PIT_CHECK(net.lead_[out_r] == 0 && net.slack_[out_r] == 0,
                "NetBuilder: a strided conv / linear cannot feed a packed "
                "conv directly");
      const auto in_r =
          static_cast<std::size_t>(net.root_[static_cast<std::size_t>(op.in0)]);
      PIT_CHECK(net.lead_[in_r] == 0 && net.slack_[in_r] == 0,
                "NetBuilder: a strided conv / linear cannot read a value "
                "that also feeds a packed conv");
    }
  }
  net.stride_.assign(nv, 0);
  for (std::size_t v = 0; v < nv; ++v) {
    net.stride_[v] = net.lead_[v] + net.values_[v].steps + net.slack_[v];
  }

  std::vector<ArenaRequest> requests;
  std::vector<ValueId> request_root;
  for (std::size_t v = 0; v < nv; ++v) {
    const auto vid = static_cast<ValueId>(v);
    if (net.root_[v] != vid || vid == in_root || vid == out_root ||
        def[v] < 0) {
      continue;  // alias, external buffer, or never produced
    }
    requests.push_back({net.values_[v].channels * net.stride_[v], def[v],
                        std::max(last[v], def[v])});
    request_root.push_back(vid);
  }
  // A padded input cannot alias the caller's dense tensor: plan a staging
  // value the forward pass copies (and zero-pads) the input into.
  const auto in_idx = static_cast<std::size_t>(in_root);
  if (net.lead_[in_idx] > 0 || net.slack_[in_idx] > 0) {
    const detail::Value in_value = net.values_[in_idx];  // copy: push_back
    net.input_stage_ = static_cast<ValueId>(nv);
    net.values_.push_back({in_value.channels, in_value.steps, -1});
    net.root_.push_back(net.input_stage_);
    net.lead_.push_back(net.lead_[in_idx]);
    net.slack_.push_back(net.slack_[in_idx]);
    net.stride_.push_back(net.stride_[in_idx]);
    requests.push_back(
        {in_value.channels * net.stride_[in_idx], 0,
         std::max(last[in_idx], 0)});
    request_root.push_back(net.input_stage_);
  }
  const ArenaPlan plan = plan_arena(requests);
  net.offsets_.assign(net.values_.size(), -1);
  for (std::size_t r = 0; r < request_root.size(); ++r) {
    net.offsets_[static_cast<std::size_t>(request_root[r])] = plan.offsets[r];
  }
  net.arena_per_sample_ = plan.total;

  // Streaming layout: legal when every op preserves the time axis one step
  // at a time — stride-1 convs (their packed weights double as the
  // per-step layout) and elementwise adds.
  net.streamable_ = true;
  for (const detail::Op& op : net.ops_) {
    const bool ok =
        (op.kind == detail::OpKind::kConv && op.stride == 1 && op.packed) ||
        op.kind == detail::OpKind::kAdd;
    if (!ok) {
      net.streamable_ = false;
      break;
    }
  }
  if (net.streamable_) {
    net.ring_off_.assign(net.ops_.size(), -1);
    for (std::size_t i = 0; i < net.ops_.size(); ++i) {
      const detail::Op& op = net.ops_[i];
      if (op.kind == detail::OpKind::kConv) {
        net.ring_off_[i] = net.ring_floats_;
        net.ring_floats_ += op.c_in * ring_span(op);
      }
    }
    net.val_off_.assign(net.values_.size(), -1);
    for (std::size_t v = 0; v < net.values_.size(); ++v) {
      if (net.root_[v] == static_cast<ValueId>(v)) {
        net.val_off_[v] = net.val_floats_;
        net.val_floats_ += net.values_[v].channels;
      }
    }
  }
  return net;
}

// ---- CompiledPlan --------------------------------------------------------

index_t CompiledPlan::input_channels() const {
  return values_[static_cast<std::size_t>(input_)].channels;
}

index_t CompiledPlan::input_steps() const {
  return values_[static_cast<std::size_t>(input_)].steps;
}

index_t CompiledPlan::output_channels() const {
  return values_[static_cast<std::size_t>(output_)].channels;
}

index_t CompiledPlan::output_steps() const {
  return values_[static_cast<std::size_t>(output_)].steps;
}

double CompiledPlan::quant_error_bound() const {
  PIT_CHECK(quantized_, "quant_error_bound: plan is not quantized");
  return q_error_bound_;
}

double CompiledPlan::quant_error_estimate() const {
  PIT_CHECK(quantized_, "quant_error_estimate: plan is not quantized");
  return q_error_estimate_;
}

index_t CompiledPlan::OpInfo::macs() const {
  switch (kind) {
    case detail::OpKind::kConv:
      return t_out * c_out * c_in * k;
    case detail::OpKind::kLinear:
      return c_in * c_out;
    case detail::OpKind::kAvgPool:
      return t_out * c_out * k;
    case detail::OpKind::kAdd:
      break;
  }
  return 0;
}

std::vector<CompiledPlan::OpInfo> CompiledPlan::op_infos() const {
  std::vector<OpInfo> infos;
  infos.reserve(ops_.size());
  for (const detail::Op& op : ops_) {
    OpInfo info;
    info.kind = op.kind;
    info.c_in = op.c_in;
    info.c_out = op.c_out;
    // Linear / add ops record no taps; normalize to the documented k = 1.
    info.k = std::max<index_t>(op.k, 1);
    info.dilation = op.dilation;
    info.stride = op.stride;
    info.t_in = op.t_in;
    info.t_out = op.t_out;
    info.relu = op.relu;
    infos.push_back(info);
  }
  return infos;
}

index_t CompiledPlan::activation_floats_per_sample() const {
  // Sum of the planned (arena-backed) buffer sizes, padding included —
  // what the arena would need without liveness reuse.
  index_t total = 0;
  for (std::size_t v = 0; v < values_.size(); ++v) {
    if (root_[v] == static_cast<ValueId>(v) && offsets_[v] >= 0) {
      total += values_[v].channels * stride_[v];
    }
  }
  return total;
}

Tensor CompiledPlan::forward(const Tensor& input,
                             ExecutionContext& ctx) const {
  // One entry point for both programs: serving layers and facades run a
  // quantized plan unchanged.
  return quantized_ ? forward_quantized(input, ctx, nullptr)
                    : forward_fp32(input, ctx, nullptr);
}

Tensor CompiledPlan::forward_fp32(const Tensor& input, ExecutionContext& ctx,
                                  const ValueHook* hook) const {
  const index_t c = input_channels();
  const index_t t = input_steps();
  const bool flat_ok = t == 1 && input.rank() == 2 && input.dim(1) == c;
  PIT_CHECK(flat_ok || (input.rank() == 3 && input.dim(1) == c &&
                        input.dim(2) == t),
            "CompiledPlan: expected (N, " << c << ", " << t << "), got "
                                          << input.shape().to_string());
  const index_t n = input.dim(0);
  const auto needed = static_cast<std::size_t>(arena_per_sample_ * n);
  if (ctx.arena_.size() < needed) {
    ctx.arena_.resize(needed);
  }
  float* arena = ctx.arena_.data();

  const detail::Value& out_value =
      values_[static_cast<std::size_t>(output_)];
  Tensor out = out_value.steps == 1
                   ? Tensor::empty(Shape{n, out_value.channels})
                   : Tensor::empty(
                         Shape{n, out_value.channels, out_value.steps});

  const ValueId in_root = root_[static_cast<std::size_t>(input_)];
  const ValueId out_root = root_[static_cast<std::size_t>(output_)];
  const float* in_data = input.data();
  float* out_data = out.data();

  // Stage the input into its padded arena layout when some conv needs it.
  if (input_stage_ >= 0) {
    const auto si = static_cast<std::size_t>(input_stage_);
    const index_t rows = n * values_[si].channels;
    const index_t steps = values_[si].steps;
    const index_t lead = lead_[si];
    const index_t stride = stride_[si];
    float* base = arena + offsets_[si] * n;
#pragma omp parallel for schedule(static) \
    if (rows * stride >= kParallelMinFloats)
    for (index_t r = 0; r < rows; ++r) {
      float* row = base + r * stride;
      std::fill(row, row + lead, 0.0F);
      std::copy(in_data + r * steps, in_data + (r + 1) * steps, row + lead);
      std::fill(row + lead + steps, row + stride, 0.0F);
    }
  }

  // Resolves a value to its run-time buffer. Aliases share their root's
  // storage; the input resolves to its padded stage when one exists.
  const auto span = [&](ValueId v) -> RowSpan {
    ValueId r = root_[static_cast<std::size_t>(v)];
    if (r == in_root) {
      if (input_stage_ >= 0) {
        r = input_stage_;
      } else {
        return {const_cast<float*>(in_data),
                values_[static_cast<std::size_t>(r)].steps};
      }
    }
    if (r == out_root) {
      return {out_data, out_value.steps};
    }
    const auto ri = static_cast<std::size_t>(r);
    return {arena + offsets_[ri] * n + lead_[ri], stride_[ri]};
  };
  // Zeroes a freshly produced value's lead region (the materialized
  // causal padding its conv consumer will read).
  const auto zero_lead = [&](ValueId v) {
    const auto r = static_cast<std::size_t>(root_[static_cast<std::size_t>(v)]);
    if (offsets_[r] < 0 || lead_[r] == 0) {
      return;
    }
    const index_t rows = n * values_[r].channels;
    float* base = arena + offsets_[r] * n;
    for (index_t row = 0; row < rows; ++row) {
      float* p = base + row * stride_[r];
      std::fill(p, p + lead_[r], 0.0F);
    }
  };

  if (hook != nullptr) {
    (*hook)(input_, in_data, n * c, t, t);
  }

  for (const detail::Op& op : ops_) {
    switch (op.kind) {
      case detail::OpKind::kConv: {
        bool x_padded = false;
        if (op.packed) {
          ValueId r = root_[static_cast<std::size_t>(op.in0)];
          if (r == in_root && input_stage_ >= 0) {
            r = input_stage_;
          }
          const auto ri = static_cast<std::size_t>(r);
          x_padded = lead_[ri] >= (op.k - 1) * op.dilation &&
                     slack_[ri] >= nn::kernels::kPackTimeTile;
        }
        exec_conv(op, params_.data(), span(op.in0), span(op.out), n,
                  x_padded);
        break;
      }
      case detail::OpKind::kLinear:
        exec_linear(op, params_.data(), span(op.in0), span(op.out), n);
        break;
      case detail::OpKind::kAvgPool:
        exec_avg_pool(op, span(op.in0), span(op.out), n);
        break;
      case detail::OpKind::kAdd:
        exec_add(op, span(op.in0), span(op.in1), span(op.out), n);
        break;
    }
    zero_lead(op.out);
    if (hook != nullptr) {
      const RowSpan s = span(op.out);
      const detail::Value& v = values_[static_cast<std::size_t>(op.out)];
      (*hook)(op.out, s.p, n * v.channels, v.steps, s.stride);
    }
  }
  return out;
}

// ---- Streaming step execution --------------------------------------------

void CompiledPlan::bind_stream(ExecutionContext& ctx) const {
  PIT_CHECK(streamable_,
            "CompiledPlan::step: plan is not streamable (it contains a "
            "pool, linear, or strided conv — run forward() on whole "
            "sequences instead)");
  if (ctx.stream_plan_ != this) {
    if (quantized_) {
      bind_stream_quantized(ctx);  // zero-point-filled u8 rings
    } else {
      ctx.stream_ring_.assign(static_cast<std::size_t>(ring_floats_), 0.0F);
      ctx.stream_vals_.assign(static_cast<std::size_t>(val_floats_), 0.0F);
    }
    ctx.stream_t_ = 0;
    ctx.stream_plan_ = this;
  }
}

void CompiledPlan::step(const float* input, float* output,
                        ExecutionContext& ctx) const {
  bind_stream(ctx);
  if (quantized_) {
    step_quantized(input, output, ctx);
    return;
  }
  float* rings = ctx.stream_ring_.data();
  float* vals = ctx.stream_vals_.data();
  const auto t = static_cast<index_t>(ctx.stream_t_);

  const auto vec = [&](ValueId v) -> float* {
    const auto r = static_cast<std::size_t>(root_[static_cast<std::size_t>(v)]);
    return vals + val_off_[r];
  };
  std::copy(input, input + input_channels(), vec(input_));

  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const detail::Op& op = ops_[i];
    float* y = vec(op.out);
    if (op.kind == detail::OpKind::kAdd) {
      const float* a = vec(op.in0);
      const float* b = vec(op.in1);
      for (index_t ch = 0; ch < op.c_out; ++ch) {
        const float s = a[ch] + b[ch];
        y[ch] = op.relu && s < 0.0F ? 0.0F : s;
      }
      continue;
    }
    // Conv: push the current input vector into this op's history ring,
    // then dot every tap against its dilated look-back slot. Slots the
    // sequence has not reached yet still hold their zero initialization —
    // exactly the implicit causal padding of the batched kernels.
    const float* x = vec(op.in0);
    const index_t span = ring_span(op);
    const index_t pos = t % span;
    float* ring = rings + ring_off_[static_cast<std::size_t>(i)];
    for (index_t ci = 0; ci < op.c_in; ++ci) {
      ring[ci * span + pos] = x[ci];
    }
    if (op.b_off >= 0) {
      const float* b = params_.data() + op.b_off;
      std::copy(b, b + op.c_out, y);
    } else {
      std::fill(y, y + op.c_out, 0.0F);
    }
    // Packed weight layout: wp[(ci*k + i) * co_round + co] — contiguous
    // over output channels, which is the inner loop here too.
    const index_t co_round =
        (op.c_out + nn::kernels::kPackCo - 1) / nn::kernels::kPackCo *
        nn::kernels::kPackCo;
    const float* wp = params_.data() + op.w_off;
    for (index_t ci = 0; ci < op.c_in; ++ci) {
      const float* crow = ring + ci * span;
      for (index_t tap = 0; tap < op.k; ++tap) {
        const index_t back = tap * op.dilation;  // < span by construction
        const index_t slot = pos >= back ? pos - back : pos - back + span;
        const float xv = crow[slot];
        if (xv == 0.0F) {
          continue;  // padding region and post-ReLU zeros are common
        }
        const float* wrow = wp + (ci * op.k + tap) * co_round;
        for (index_t co = 0; co < op.c_out; ++co) {
          y[co] += wrow[co] * xv;
        }
      }
    }
    if (op.relu) {
      for (index_t co = 0; co < op.c_out; ++co) {
        y[co] = y[co] > 0.0F ? y[co] : 0.0F;
      }
    }
  }
  const float* out_vec = vec(output_);
  std::copy(out_vec, out_vec + output_channels(), output);
  ++ctx.stream_t_;
}

Tensor CompiledPlan::step(const Tensor& input, ExecutionContext& ctx) const {
  PIT_CHECK(input.rank() == 1 && input.dim(0) == input_channels(),
            "CompiledPlan::step: expected a (" << input_channels()
                                               << ",) time-step vector, got "
                                               << input.shape().to_string());
  Tensor out = Tensor::empty(Shape{output_channels()});
  step(input.data(), out.data(), ctx);
  return out;
}

std::string CompiledPlan::summary() const {
  std::ostringstream os;
  os << "CompiledPlan: " << ops_.size() << " ops, "
     << param_floats() << " packed param floats, arena "
     << arena_per_sample_ << " floats/sample (unplanned: "
     << activation_floats_per_sample() << ")"
     << (streamable_ ? ", streamable" : "") << "\n";
  if (quantized_) {
    os << "  int8 program: " << qweights_.size() << " packed weight bytes, "
       << q_arena_bytes_ << " arena bytes/sample, output error bound "
       << q_error_bound_ << " (rms estimate " << q_error_estimate_ << ")\n";
  }
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const detail::Op& op = ops_[i];
    os << "  #" << i << " ";
    switch (op.kind) {
      case detail::OpKind::kConv:
        os << "conv " << op.c_in << "->" << op.c_out << " k" << op.k << " d"
           << op.dilation << " s" << op.stride;
        break;
      case detail::OpKind::kLinear:
        os << "linear " << op.c_in << "->" << op.c_out;
        break;
      case detail::OpKind::kAvgPool:
        os << "avg_pool k" << op.k << " s" << op.stride;
        break;
      case detail::OpKind::kAdd:
        os << "add";
        break;
    }
    os << " t" << op.t_in << "->" << op.t_out;
    if (op.relu) {
      os << " +relu";
    }
    const ValueId r = root_[static_cast<std::size_t>(op.out)];
    const index_t off = offsets_[static_cast<std::size_t>(r)];
    if (off >= 0) {
      os << " @" << off;
    } else {
      os << " @out";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace pit::runtime
