#include "runtime/plan_registry.hpp"

#include <atomic>
#include <utility>

#include "tensor/error.hpp"

namespace pit::runtime {

namespace registry_detail {

struct VersionState {
  std::shared_ptr<const CompiledPlan> fp32;  // the registered (primary) plan
  std::shared_ptr<const CompiledPlan> int8;  // lazy lowering, or null
  std::uint64_t fingerprint = 0;
  std::string shape_class;
};

struct ModelEntry {
  // versions / active are guarded by PlanRegistry::registry_mutex_; the
  // epoch only flips under that mutex too, but is read lock-free by the
  // ticket path. inflight[p] counts work admitted while epoch parity was
  // p; draining gates the ticket-release notify so the idle hot path
  // never touches registry_mutex_.
  std::vector<VersionState> versions;
  std::size_t active = 0;
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<std::int64_t> inflight[2] = {};
  std::atomic<bool> draining{false};
  std::mutex swap_mutex;  // serializes swap_active per model
};

}  // namespace registry_detail

using registry_detail::ModelEntry;
using registry_detail::VersionState;

std::uint64_t weights_fingerprint(const nn::Module& model) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](const nn::NamedParameter& p) {
    h = hash_bytes(p.name.data(), p.name.size(), h);
    for (int d = 0; d < p.value.rank(); ++d) {
      const index_t dim = p.value.dim(d);
      h = hash_bytes(&dim, sizeof(dim), h);
    }
    h = hash_bytes(p.value.data(),
                   static_cast<std::size_t>(p.value.numel()) * sizeof(float),
                   h);
  };
  for (const nn::NamedParameter& p : model.named_parameters()) {
    mix(p);
  }
  // Buffers participate because batch-norm running statistics fold into
  // the compiled conv weights — two checkpoints with equal parameters but
  // different running stats compile to different plans.
  for (const nn::NamedParameter& b : model.named_buffers()) {
    mix(b);
  }
  return h;
}

PlanRegistry::PlanRegistry() = default;
PlanRegistry::~PlanRegistry() = default;

void InflightTicket::release() {
  if (reg_ != nullptr) {
    reg_->release_ticket(entry_, parity_);
    reg_ = nullptr;
  }
}

ModelEntry* PlanRegistry::entry(const std::string& model) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = models_.find(model);
  PIT_CHECK(it != models_.end(),
            "PlanRegistry: unknown model '" << model << "'");
  return it->second.get();
}

std::uint64_t PlanRegistry::add_version_locked(
    const std::string& model, std::shared_ptr<const CompiledPlan> plan,
    std::uint64_t fingerprint, const std::string& shape_class) {
  std::unique_ptr<ModelEntry>& slot = models_[model];
  if (slot == nullptr) {
    slot = std::make_unique<ModelEntry>();
  }
  ModelEntry& e = *slot;
  for (std::size_t i = 0; i < e.versions.size(); ++i) {
    if (e.versions[i].fp32 == plan) {
      return i + 1;  // idempotent re-registration
    }
  }
  if (!e.versions.empty()) {
    const CompiledPlan& first = *e.versions.front().fp32;
    PIT_CHECK(plan->input_channels() == first.input_channels() &&
                  plan->input_steps() == first.input_steps() &&
                  plan->output_channels() == first.output_channels() &&
                  plan->output_steps() == first.output_steps(),
              "PlanRegistry::register_version('"
                  << model << "'): version geometry ("
                  << plan->input_channels() << ", " << plan->input_steps()
                  << ") -> (" << plan->output_channels() << ", "
                  << plan->output_steps()
                  << ") differs from the model's established geometry — "
                     "hot swap requires interchangeable versions");
  }
  VersionState v;
  v.fp32 = std::move(plan);
  v.fingerprint = fingerprint;
  v.shape_class = shape_class;
  e.versions.push_back(std::move(v));
  return e.versions.size();  // first version: active == 0 already
}

std::uint64_t PlanRegistry::register_version(const std::string& model,
                                             std::uint64_t fingerprint,
                                             const std::string& shape_class,
                                             const CompileFn& compile) {
  const PlanKey key{fingerprint, shape_class, PlanDtype::kF32};
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++stats_.compile_hits;
      return add_version_locked(model, it->second, fingerprint, shape_class);
    }
  }
  // Cold compile outside the lock: registration of other models and the
  // serve hot path keep moving. Two threads racing the same key both
  // compile; the first insert wins and the loser's plan is dropped.
  std::shared_ptr<const CompiledPlan> plan = compile(pool_);
  PIT_CHECK(plan != nullptr,
            "PlanRegistry::register_version('" << model
                                               << "'): compile returned null");
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto [it, inserted] = memo_.try_emplace(key, std::move(plan));
  if (inserted) {
    ++stats_.compiles;
  } else {
    ++stats_.compile_hits;
  }
  return add_version_locked(model, it->second, fingerprint, shape_class);
}

std::uint64_t PlanRegistry::register_plan(
    const std::string& model, std::shared_ptr<const CompiledPlan> plan) {
  PIT_CHECK(plan != nullptr, "PlanRegistry::register_plan: null plan");
  // Fingerprint from the plan's own packed blocks + geometry, so two
  // registrations of bytewise-equal plans land on one memo entry.
  std::uint64_t fp = plan->param_content_hash();
  const index_t geom[4] = {plan->input_channels(), plan->input_steps(),
                           plan->output_channels(), plan->output_steps()};
  fp = hash_bytes(geom, sizeof(geom), fp);
  const std::string shape_class = "adapter";
  const PlanKey key{fp, shape_class, PlanDtype::kF32};
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto [it, inserted] = memo_.try_emplace(key, std::move(plan));
  if (!inserted) {
    ++stats_.compile_hits;
  }
  return add_version_locked(model, it->second, fp, shape_class);
}

std::shared_ptr<const CompiledPlan> PlanRegistry::quantized(
    const std::string& model, std::uint64_t version,
    const data::DataLoader& calibration, QuantizeOptions options) {
  ModelEntry* e = entry(model);
  std::shared_ptr<const CompiledPlan> src;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    PIT_CHECK(version >= 1 && version <= e->versions.size(),
              "PlanRegistry::quantized('" << model << "'): version "
                                          << version << " of "
                                          << e->versions.size());
    VersionState& v = e->versions[version - 1];
    if (v.int8 != nullptr) {
      ++stats_.lowering_hits;
      return v.int8;
    }
    src = v.fp32;
  }
  // Calibrate + lower outside the lock (this runs whole forward passes).
  // s8 weights depend only on the fp32 weights, so interning through the
  // registry pool dedups unchanged layers across versions' lowerings.
  options.pool = &pool_;
  std::shared_ptr<const CompiledPlan> lowered =
      quantize_plan(*src, calibration, options);
  std::lock_guard<std::mutex> lock(registry_mutex_);
  VersionState& v = e->versions[version - 1];
  if (v.int8 != nullptr) {
    ++stats_.lowering_hits;  // a concurrent caller won the race
    return v.int8;
  }
  v.int8 = std::move(lowered);
  ++stats_.lowerings;
  return v.int8;
}

void PlanRegistry::swap_active(const std::string& model,
                               std::uint64_t version) {
  ModelEntry* e = entry(model);
  // Per-model swap serialization first, then the registry lock: a ticket
  // release may notify under registry_mutex_ while this thread waits.
  std::lock_guard<std::mutex> swap_lock(e->swap_mutex);
  std::unique_lock<std::mutex> lock(registry_mutex_);
  PIT_CHECK(version >= 1 && version <= e->versions.size(),
            "PlanRegistry::swap_active('" << model << "'): version "
                                          << version << " of "
                                          << e->versions.size());
  if (e->active == version - 1) {
    return;  // already active — nothing to drain
  }
  const std::uint64_t old_epoch = e->epoch.load(std::memory_order_seq_cst);
  const unsigned old_parity = old_epoch & 1U;
  e->active = version - 1;
  // Flip: from here every acquire()/ticket() lands on the new parity.
  e->epoch.store(old_epoch + 1, std::memory_order_seq_cst);
  e->draining.store(true, std::memory_order_seq_cst);
  drain_cv_.wait(lock, [&] {
    return e->inflight[old_parity].load(std::memory_order_seq_cst) == 0;
  });
  e->draining.store(false, std::memory_order_seq_cst);
  ++stats_.swaps;
}

PlanLease PlanRegistry::acquire_entry(ModelEntry* e, PlanDtype dtype) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  PIT_CHECK(!e->versions.empty(), "PlanRegistry::acquire: model has no "
                                  "registered versions");
  const VersionState& v = e->versions[e->active];
  std::shared_ptr<const CompiledPlan> plan =
      dtype == PlanDtype::kF32 ? v.fp32 : v.int8;
  PIT_CHECK(plan != nullptr,
            "PlanRegistry::acquire: active version "
                << (e->active + 1)
                << " has no int8 lowering — call quantized() before "
                   "serving PlanDtype::kInt8");
  // The epoch cannot flip while registry_mutex_ is held (swap_active
  // flips under it), so this parity is the one a draining swap watches.
  const std::uint64_t ep = e->epoch.load(std::memory_order_seq_cst);
  e->inflight[ep & 1U].fetch_add(1, std::memory_order_seq_cst);
  ++stats_.leases;
  PlanLease lease;
  lease.plan_ = std::move(plan);
  lease.version_ = e->active + 1;
  lease.ticket_.reg_ = this;
  lease.ticket_.entry_ = e;
  lease.ticket_.parity_ = static_cast<unsigned>(ep & 1U);
  return lease;
}

InflightTicket PlanRegistry::ticket_entry(ModelEntry* e) {
  for (;;) {
    const std::uint64_t ep = e->epoch.load(std::memory_order_seq_cst);
    const auto parity = static_cast<unsigned>(ep & 1U);
    e->inflight[parity].fetch_add(1, std::memory_order_seq_cst);
    if (e->epoch.load(std::memory_order_seq_cst) == ep) {
      // seq_cst pairing: a swap that flipped the epoch after this
      // re-check must see the increment in its drain wait.
      InflightTicket t;
      t.reg_ = this;
      t.entry_ = e;
      t.parity_ = parity;
      return t;
    }
    // A swap flipped the epoch mid-admission: back out of the stale
    // parity (waking its drain if we were the last) and retry.
    release_ticket(e, parity);
  }
}

void PlanRegistry::release_ticket(ModelEntry* e, unsigned parity) {
  const std::int64_t left =
      e->inflight[parity].fetch_sub(1, std::memory_order_seq_cst) - 1;
  if (left == 0 && e->draining.load(std::memory_order_seq_cst)) {
    // Take the registry lock so the notify cannot slip between a
    // draining swap's predicate check and its wait.
    std::lock_guard<std::mutex> lock(registry_mutex_);
    drain_cv_.notify_all();
  }
}

std::uint64_t PlanRegistry::active_version(const std::string& model) const {
  ModelEntry* e = entry(model);
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return e->active + 1;
}

std::size_t PlanRegistry::num_versions(const std::string& model) const {
  ModelEntry* e = entry(model);
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return e->versions.size();
}

bool PlanRegistry::has_model(const std::string& model) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return models_.count(model) > 0;
}

PlanLease PlanRegistry::acquire(const std::string& model, PlanDtype dtype) {
  return acquire_entry(entry(model), dtype);
}

PlanRegistryStats PlanRegistry::stats() const {
  PlanRegistryStats out;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    out = stats_;
  }
  out.pool = pool_.stats();
  return out;
}

void PlanRegistry::account_memory_locked(
    const ModelEntry& e, ModelMemory& m,
    std::unordered_map<const void*, std::size_t>& seen) {
  for (const VersionState& v : e.versions) {
    for (const std::shared_ptr<const CompiledPlan>& plan : {v.fp32, v.int8}) {
      if (plan == nullptr) {
        continue;
      }
      plan->visit_weight_blocks([&](const void* ptr, std::size_t bytes) {
        m.logical_bytes += bytes;
        seen.emplace(ptr, bytes);
      });
    }
  }
}

ModelMemory PlanRegistry::memory(const std::string& model) const {
  ModelEntry* e = entry(model);
  std::lock_guard<std::mutex> lock(registry_mutex_);
  ModelMemory m;
  std::unordered_map<const void*, std::size_t> seen;
  account_memory_locked(*e, m, seen);
  for (const auto& [ptr, bytes] : seen) {
    m.resident_bytes += bytes;
  }
  return m;
}

ModelMemory PlanRegistry::memory() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  ModelMemory m;
  std::unordered_map<const void*, std::size_t> seen;
  for (const auto& [name, e] : models_) {
    account_memory_locked(*e, m, seen);
  }
  for (const auto& [ptr, bytes] : seen) {
    m.resident_bytes += bytes;
  }
  return m;
}

PlanHandle::PlanHandle(std::shared_ptr<PlanRegistry> registry,
                       std::string model, PlanDtype dtype)
    : registry_(std::move(registry)),
      model_(std::move(model)),
      dtype_(dtype) {
  PIT_CHECK(registry_ != nullptr, "PlanHandle: null registry");
  entry_ = registry_->entry(model_);  // throws for an unknown model
}

PlanHandle PlanHandle::single(std::shared_ptr<const CompiledPlan> plan) {
  auto registry = std::make_shared<PlanRegistry>();
  registry->register_plan("default", std::move(plan));
  return PlanHandle(std::move(registry), "default");
}

PlanLease PlanHandle::acquire() const {
  PIT_CHECK(registry_ != nullptr, "PlanHandle::acquire: empty handle");
  return registry_->acquire_entry(entry_, dtype_);
}

InflightTicket PlanHandle::ticket() const {
  PIT_CHECK(registry_ != nullptr, "PlanHandle::ticket: empty handle");
  return registry_->ticket_entry(entry_);
}

}  // namespace pit::runtime
