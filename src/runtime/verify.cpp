// Static verification pass over the compiled-plan IR. See verify.hpp for
// the invariant families; this TU re-derives each layout from the op list
// (the same arithmetic plan_builder.cpp / quant_lowering.cpp used to build
// it) and reports every divergence as a structured Issue.
#include "runtime/verify.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>

#include "nn/kernels/registry.hpp"
#include "runtime/compiled_net.hpp"
#include "runtime/executor_detail.hpp"
#include "tensor/error.hpp"

namespace pit::runtime::analysis {

namespace {
using nn::kernels::KernelFootprint;
using nn::kernels::kQuantCiGroup;
using nn::kernels::quant_groups;
using nn::kernels::Registry;

std::atomic<bool> g_verify_enabled{true};
}  // namespace

const char* invariant_name(Invariant inv) {
  switch (inv) {
    case Invariant::kArenaOverlap:
      return "arena-overlap";
    case Invariant::kFootprint:
      return "footprint";
    case Invariant::kBinding:
      return "binding";
    case Invariant::kRing:
      return "ring";
    case Invariant::kQuantParams:
      return "quant-params";
    case Invariant::kParamPool:
      return "param-pool";
    case Invariant::kLayout:
      return "layout";
  }
  return "unknown";
}

std::string Issue::to_string() const {
  std::ostringstream os;
  os << '[' << invariant_name(invariant) << ']';
  if (op >= 0) {
    os << " op#" << op;
  }
  if (value >= 0) {
    os << " v" << value;
  }
  if (lo != 0 || hi != 0) {
    os << " [" << lo << ", " << hi << ')';
  }
  if (other_lo != 0 || other_hi != 0) {
    os << " vs [" << other_lo << ", " << other_hi << ')';
  }
  if (!registry_key.empty()) {
    os << " key=" << registry_key;
  }
  os << ": " << message;
  return os.str();
}

bool Report::has(Invariant inv) const {
  return std::any_of(issues.begin(), issues.end(),
                     [inv](const Issue& i) { return i.invariant == inv; });
}

std::string Report::to_string() const {
  if (issues.empty()) {
    return "plan verifies clean";
  }
  std::ostringstream os;
  os << issues.size() << " invariant violation(s):";
  for (const Issue& i : issues) {
    os << "\n  " << i.to_string();
  }
  return os.str();
}

/// Friend of CompiledPlan: read-only access to the planned layouts.
class PlanVerifier {
 public:
  explicit PlanVerifier(const CompiledPlan& plan) : p_(plan) {}

  Report run() {
    if (!check_structure()) {
      return std::move(report_);  // per-value arrays unusable; stop here
    }
    check_shapes();
    check_row_layout();
    check_arena();
    check_footprints();
    check_param_pool();
    check_bindings();
    check_streaming();
    if (p_.quantized_) {
      check_quant_layout();
      check_quant_arena();
      check_quant_params();
      check_quant_pools();
      check_quant_bindings();
      check_quant_streaming();
    }
    return std::move(report_);
  }

 private:
  // One live arena region: a storage root's planned byte/float block over
  // its inclusive op lifetime.
  struct Region {
    ValueId root = -1;
    long long lo = 0, hi = 0;  // half-open offset range
    int start = 0, end = 0;    // inclusive op interval
  };

  void issue(Invariant inv, int op, int value, long long lo, long long hi,
             long long olo, long long ohi, std::string key,
             std::string message) {
    report_.issues.push_back({inv, op, value, lo, hi, olo, ohi,
                              std::move(key), std::move(message)});
  }
  void issue(Invariant inv, int op, int value, std::string message) {
    issue(inv, op, value, 0, 0, 0, 0, {}, std::move(message));
  }

  bool value_ok(ValueId v) const {
    return v >= 0 && v < static_cast<ValueId>(p_.values_.size());
  }

  ValueId root(ValueId v) const {
    return p_.root_[static_cast<std::size_t>(v)];
  }

  // Storage root a packed conv actually reads at run time: the input
  // resolves to its padded staging value when one exists (the executor's
  // span() substitution).
  ValueId fp32_read_root(ValueId v) const {
    ValueId r = root(v);
    if (r == root(p_.input_) && p_.input_stage_ >= 0) {
      r = p_.input_stage_;
    }
    return r;
  }

  std::size_t qroot(ValueId v) const {
    auto r = static_cast<std::size_t>(root(v));
    return r == static_cast<std::size_t>(root(p_.input_))
               ? static_cast<std::size_t>(p_.q_stage_)
               : r;
  }

  // ---- structure: ids in range, per-value/per-op arrays sized ------------
  bool check_structure() {
    const auto nv = p_.values_.size();
    const auto no = p_.ops_.size();
    bool ok = true;
    const auto sized = [&](std::size_t got, std::size_t want,
                           const char* name) {
      if (got != want) {
        std::ostringstream os;
        os << name << " holds " << got << " entries for " << want;
        issue(Invariant::kLayout, -1, -1, os.str());
        ok = false;
      }
    };
    sized(p_.root_.size(), nv, "root_");
    sized(p_.offsets_.size(), nv, "offsets_");
    sized(p_.lead_.size(), nv, "lead_");
    sized(p_.slack_.size(), nv, "slack_");
    sized(p_.stride_.size(), nv, "stride_");
    if (p_.quantized_) {
      sized(p_.qops_.size(), no, "qops_");
      sized(p_.qvalue_.size(), nv, "qvalue_");
      sized(p_.q_lead_.size(), nv, "q_lead_");
      sized(p_.q_stride_.size(), nv, "q_stride_");
      sized(p_.q_off_.size(), nv, "q_off_");
    }
    if (no == 0 || !value_ok(p_.input_) || !value_ok(p_.output_)) {
      issue(Invariant::kLayout, -1, -1,
            "empty op list or input/output value out of range");
      ok = false;
    }
    for (std::size_t i = 0; ok && i < no; ++i) {
      const detail::Op& op = p_.ops_[i];
      if (!value_ok(op.in0) || !value_ok(op.out) ||
          (op.kind == detail::OpKind::kAdd && !value_ok(op.in1))) {
        issue(Invariant::kLayout, static_cast<int>(i), -1,
              "op references a value id out of range");
        ok = false;
      }
    }
    if (!ok) {
      return false;
    }
    // Alias chains resolve to the stored roots (aliases point backwards).
    for (std::size_t v = 0; v < nv; ++v) {
      const ValueId a = p_.values_[v].alias_of;
      const ValueId want =
          a < 0 ? static_cast<ValueId>(v)
                : (a < static_cast<ValueId>(v)
                       ? p_.root_[static_cast<std::size_t>(a)]
                       : -1);
      if (want < 0 || p_.root_[v] != want) {
        issue(Invariant::kLayout, -1, static_cast<int>(v),
              "alias does not resolve to its storage root");
      }
    }
    return report_.ok();
  }

  // ---- per-op geometry against the recorded value shapes -----------------
  void check_shapes() {
    for (std::size_t i = 0; i < p_.ops_.size(); ++i) {
      const detail::Op& op = p_.ops_[i];
      const detail::Value& in = p_.values_[static_cast<std::size_t>(op.in0)];
      const detail::Value& out = p_.values_[static_cast<std::size_t>(op.out)];
      const auto shape_issue = [&](const char* what) {
        std::ostringstream os;
        os << what << " (op geometry " << op.c_in << "->" << op.c_out << " t"
           << op.t_in << "->" << op.t_out << ")";
        issue(Invariant::kLayout, static_cast<int>(i), op.out, os.str());
      };
      if (out.channels != op.c_out || out.steps != op.t_out) {
        shape_issue("output value shape disagrees with the op");
      }
      switch (op.kind) {
        case detail::OpKind::kConv:
          if (in.channels != op.c_in || in.steps != op.t_in) {
            shape_issue("conv input shape disagrees with the op");
          }
          if (op.t_out !=
              nn::causal_conv1d_output_steps(op.t_in, op.stride)) {
            shape_issue("conv t_out is not the causal output length");
          }
          break;
        case detail::OpKind::kLinear:
          if (in.steps != 1 || op.t_in != 1 || op.t_out != 1 ||
              in.channels != op.c_in) {
            shape_issue("linear requires a flat (steps == 1) input");
          }
          break;
        case detail::OpKind::kAvgPool:
          if (in.channels != op.c_in || in.steps != op.t_in ||
              op.c_in != op.c_out ||
              op.t_out != (op.t_in - op.k) / op.stride + 1) {
            shape_issue("avg_pool geometry disagrees with its values");
          }
          break;
        case detail::OpKind::kAdd: {
          const detail::Value& in1 =
              p_.values_[static_cast<std::size_t>(op.in1)];
          if (in.channels != op.c_out || in.steps != op.t_out ||
              in1.channels != op.c_out || in1.steps != op.t_out) {
            shape_issue("add operand shapes disagree");
          }
          break;
        }
      }
    }
  }

  // ---- fp32 row layout bookkeeping ---------------------------------------
  void check_row_layout() {
    for (std::size_t v = 0; v < p_.values_.size(); ++v) {
      if (p_.lead_[v] < 0 || p_.slack_[v] < 0 ||
          p_.stride_[v] !=
              p_.lead_[v] + p_.values_[v].steps + p_.slack_[v]) {
        std::ostringstream os;
        os << "row stride " << p_.stride_[v] << " != lead " << p_.lead_[v]
           << " + steps " << p_.values_[v].steps << " + slack "
           << p_.slack_[v];
        issue(Invariant::kLayout, -1, static_cast<int>(v), os.str());
      }
    }
  }

  // Recomputes per-root inclusive [def, last] lifetimes through `to_root`.
  template <typename RootFn>
  void liveness(RootFn to_root, std::vector<int>& def,
                std::vector<int>& last) const {
    def.assign(p_.values_.size(), -1);
    last.assign(p_.values_.size(), -1);
    for (std::size_t i = 0; i < p_.ops_.size(); ++i) {
      const detail::Op& op = p_.ops_[i];
      const auto touch = [&](ValueId v, std::vector<int>& slot) {
        if (v >= 0) {
          slot[to_root(v)] = static_cast<int>(i);
        }
      };
      touch(op.in0, last);
      touch(op.in1, last);
      touch(op.out, def);
    }
  }

  // Pairwise disjointness of simultaneously-live regions + capacity.
  void check_regions(const std::vector<Region>& regions, long long capacity,
                     const char* arena, const char* unit) {
    for (const Region& r : regions) {
      if (r.lo < 0 || r.hi > capacity) {
        std::ostringstream os;
        os << arena << " region falls outside the planned " << capacity
           << ' ' << unit;
        issue(Invariant::kArenaOverlap, -1, r.root, r.lo, r.hi, 0, capacity,
              {}, os.str());
      }
    }
    for (std::size_t a = 0; a < regions.size(); ++a) {
      for (std::size_t b = a + 1; b < regions.size(); ++b) {
        const Region& ra = regions[a];
        const Region& rb = regions[b];
        const bool live_together =
            !(ra.end < rb.start || rb.end < ra.start);
        const bool overlap = ra.lo < rb.hi && rb.lo < ra.hi;
        if (live_together && overlap) {
          std::ostringstream os;
          os << arena << " regions of v" << ra.root << " and v" << rb.root
             << " overlap while both live (ops " << std::max(ra.start,
                                                             rb.start)
             << ".." << std::min(ra.end, rb.end) << ", " << unit << ")";
          issue(Invariant::kArenaOverlap, -1, ra.root, ra.lo, ra.hi, rb.lo,
                rb.hi, {}, os.str());
        }
      }
    }
  }

  // ---- fp32 arena non-aliasing -------------------------------------------
  void check_arena() {
    std::vector<int> def;
    std::vector<int> last;
    liveness([&](ValueId v) { return static_cast<std::size_t>(root(v)); },
             def, last);
    const ValueId in_root = root(p_.input_);
    const ValueId out_root = root(p_.output_);
    std::vector<Region> regions;
    for (std::size_t v = 0; v < p_.values_.size(); ++v) {
      const auto vid = static_cast<ValueId>(v);
      if (p_.root_[v] != vid || p_.offsets_[v] < 0) {
        continue;
      }
      if (vid == in_root || vid == out_root) {
        issue(Invariant::kArenaOverlap, -1, static_cast<int>(v),
              "externally-buffered value carries an arena offset");
        continue;
      }
      Region r;
      r.root = vid;
      r.lo = p_.offsets_[v];
      r.hi = r.lo + static_cast<long long>(p_.values_[v].channels) *
                        p_.stride_[v];
      if (vid == p_.input_stage_) {
        r.start = 0;
        r.end = std::max(last[static_cast<std::size_t>(in_root)], 0);
      } else if (def[v] < 0) {
        issue(Invariant::kArenaOverlap, -1, static_cast<int>(v),
              "planned value is never produced by any op");
        continue;
      } else {
        r.start = def[v];
        r.end = std::max(last[v], def[v]);
      }
      regions.push_back(r);
    }
    check_regions(regions, p_.arena_per_sample_, "fp32 arena", "floats");
    // Every arena-resident operand an op touches must actually be planned.
    for (std::size_t i = 0; i < p_.ops_.size(); ++i) {
      const detail::Op& op = p_.ops_[i];
      const auto planned = [&](ValueId v) {
        if (v < 0) {
          return;
        }
        const ValueId r = fp32_read_root(v);
        if (r != in_root && r != out_root &&
            p_.offsets_[static_cast<std::size_t>(r)] < 0) {
          issue(Invariant::kArenaOverlap, static_cast<int>(i), r,
                "operand's storage root has no arena offset");
        }
      };
      planned(op.in0);
      planned(op.in1);
      planned(op.out);
    }
  }

  // ---- kernel footprint containment --------------------------------------
  void check_footprints() {
    const ValueId in_root = root(p_.input_);
    const ValueId out_root = root(p_.output_);
    const auto dense = [&](ValueId r) {
      const auto ri = static_cast<std::size_t>(r);
      return p_.lead_[ri] == 0 && p_.slack_[ri] == 0;
    };
    for (std::size_t i = 0; i < p_.ops_.size(); ++i) {
      const detail::Op& op = p_.ops_[i];
      const int oi = static_cast<int>(i);
      switch (op.kind) {
        case detail::OpKind::kConv:
          if (op.packed) {
            const ValueId r = fp32_read_root(op.in0);
            if (r == in_root) {
              break;  // unstaged external input: dense clamped path
            }
            const auto ri = static_cast<std::size_t>(r);
            const KernelFootprint fp = Registry::conv_packed_f32_footprint(
                {op.k, op.c_in, op.c_out}, op.dilation, true);
            if (p_.lead_[ri] < fp.read_before ||
                p_.slack_[ri] < fp.read_after) {
              std::ostringstream os;
              os << "packed conv needs lead >= " << fp.read_before
                 << " and slack >= " << fp.read_after << " floats, input "
                 << "row has lead " << p_.lead_[ri] << " slack "
                 << p_.slack_[ri];
              issue(Invariant::kFootprint, oi, r, p_.lead_[ri],
                    p_.slack_[ri], fp.read_before, fp.read_after,
                    "conv.packed.f32", os.str());
            }
          } else if (!dense(root(op.in0)) || !dense(root(op.out))) {
            issue(Invariant::kFootprint, oi, root(op.in0), 0, 0, 0, 0,
                  "conv.train.f32",
                  "strided conv requires dense (unpadded) operand rows");
          }
          break;
        case detail::OpKind::kLinear:
          if (!dense(root(op.in0)) || !dense(root(op.out))) {
            issue(Invariant::kFootprint, oi, root(op.in0), 0, 0, 0, 0,
                  "linear.f32",
                  "linear requires dense (unpadded) operand rows");
          }
          break;
        case detail::OpKind::kAvgPool:
          if ((op.t_out - 1) * op.stride + op.k > op.t_in) {
            std::ostringstream os;
            os << "pool window reads past t_in: (t_out-1)*stride + k = "
               << (op.t_out - 1) * op.stride + op.k << " > " << op.t_in;
            issue(Invariant::kFootprint, oi, op.in0, 0,
                  (op.t_out - 1) * op.stride + op.k, 0, op.t_in, {},
                  os.str());
          }
          break;
        case detail::OpKind::kAdd:
          break;
      }
      (void)out_root;
    }
  }

  // ---- packed parameter block containment --------------------------------
  // Blocks are shared (refcounted, possibly interned across plans), so the
  // check is per handle: it must resolve inside the plan's block table AND
  // the resolved block must hold exactly the element count the op's
  // geometry demands — a stronger guarantee than the flat-pool offset
  // containment this replaces.
  void check_param_pool() {
    const index_t nblocks = p_.params_.count();
    const auto contained = [&](int oi, index_t blk, index_t count,
                               const char* what) {
      if (blk < 0 || blk >= nblocks) {
        std::ostringstream os;
        os << what << " block handle falls outside the param block table";
        issue(Invariant::kParamPool, oi, -1, blk, blk + 1, 0, nblocks, {},
              os.str());
        return;
      }
      if (p_.params_.size(blk) != count) {
        std::ostringstream os;
        os << what << " block holds " << p_.params_.size(blk)
           << " floats, op geometry needs " << count;
        issue(Invariant::kParamPool, oi, -1, p_.params_.size(blk), 0, count,
              0, {}, os.str());
      }
    };
    for (std::size_t i = 0; i < p_.ops_.size(); ++i) {
      const detail::Op& op = p_.ops_[i];
      const int oi = static_cast<int>(i);
      switch (op.kind) {
        case detail::OpKind::kConv: {
          index_t wfloats = op.c_out * op.c_in * op.k;
          if (op.packed) {
            nn::kernels::ConvDims dims{};
            dims.c_in = op.c_in;
            dims.c_out = op.c_out;
            dims.k = op.k;
            wfloats = nn::kernels::packed_weight_floats(dims);
          }
          contained(oi, op.w_blk, wfloats, "conv weights");
          if (op.b_blk >= 0) {
            contained(oi, op.b_blk, op.c_out, "conv bias");
          }
          break;
        }
        case detail::OpKind::kLinear:
          contained(oi, op.w_blk, op.c_out * op.c_in, "linear weights");
          if (op.b_blk >= 0) {
            contained(oi, op.b_blk, op.c_out, "linear bias");
          }
          break;
        case detail::OpKind::kAvgPool:
        case detail::OpKind::kAdd:
          break;
      }
    }
  }

  // ---- fp32 binding coherence: re-bind and compare -----------------------
  void check_bindings() {
    const Registry& reg = Registry::instance();
    const auto mismatch = [&](int oi, const char* key, const char* what) {
      std::ostringstream os;
      os << what << " differs from what the registry binds for the op's "
         << "signature";
      issue(Invariant::kBinding, oi, -1, 0, 0, 0, 0, key, os.str());
    };
    for (std::size_t i = 0; i < p_.ops_.size(); ++i) {
      const detail::Op& op = p_.ops_[i];
      const int oi = static_cast<int>(i);
      switch (op.kind) {
        case detail::OpKind::kConv:
          if (op.packed) {
            const nn::kernels::ConvSig sig{op.k, op.c_in, op.c_out};
            const auto conv = reg.conv_packed_f32(sig);
            if (op.bind.conv != conv.fn || op.bind.meta != conv.meta) {
              mismatch(oi, "conv.packed.f32", "packed conv binding");
            }
            const auto step = reg.conv_step_f32(sig);
            if (op.bind.step != step.fn || op.bind.step_meta != step.meta) {
              mismatch(oi, "conv.step.f32", "streaming step binding");
            }
          } else {
            nn::kernels::ConvDims dims{};
            dims.n = 1;
            dims.c_in = op.c_in;
            dims.c_out = op.c_out;
            dims.k = op.k;
            dims.t_in = op.t_in;
            dims.t_out = op.t_out;
            dims.dilation = op.dilation;
            dims.stride = op.stride;
            const auto train = reg.conv_train_f32(dims);
            if (op.bind.conv_train != train.fn ||
                op.bind.meta != train.meta) {
              mismatch(oi, "conv.train.f32", "strided conv binding");
            }
          }
          break;
        case detail::OpKind::kLinear: {
          const auto lin = reg.linear_f32();
          if (op.bind.linear != lin.fn || op.bind.meta != lin.meta) {
            mismatch(oi, "linear.f32", "linear binding");
          }
          break;
        }
        case detail::OpKind::kAvgPool:
        case detail::OpKind::kAdd:
          if (op.bind.meta != &Registry::inline_meta()) {
            mismatch(oi, "builtin/inline", "inline-op meta");
          }
          break;
      }
    }
  }

  // ---- streaming ring / step-vector layout -------------------------------
  void check_streaming() {
    if (!p_.streamable_) {
      return;
    }
    for (std::size_t i = 0; i < p_.ops_.size(); ++i) {
      const detail::Op& op = p_.ops_[i];
      const bool ok =
          (op.kind == detail::OpKind::kConv && op.stride == 1 &&
           op.packed) ||
          op.kind == detail::OpKind::kAdd;
      if (!ok) {
        issue(Invariant::kRing, static_cast<int>(i), -1,
              "plan is marked streamable but this op cannot stream");
      }
    }
    if (p_.ring_off_.size() != p_.ops_.size() ||
        p_.val_off_.size() != p_.values_.size()) {
      issue(Invariant::kRing, -1, -1,
            "streaming layout arrays are missing or mis-sized");
      return;
    }
    index_t ring = 0;
    for (std::size_t i = 0; i < p_.ops_.size(); ++i) {
      const detail::Op& op = p_.ops_[i];
      const index_t want =
          op.kind == detail::OpKind::kConv ? ring : static_cast<index_t>(-1);
      if (p_.ring_off_[i] != want) {
        std::ostringstream os;
        os << "conv ring offset " << p_.ring_off_[i] << ", expected "
           << want << " ((k-1)*dilation+1 slots per input channel)";
        issue(Invariant::kRing, static_cast<int>(i), -1, p_.ring_off_[i], 0,
              want, 0, {}, os.str());
      }
      if (op.kind == detail::OpKind::kConv) {
        ring += op.c_in * detail::ring_span(op);
      }
    }
    if (p_.ring_floats_ != ring) {
      std::ostringstream os;
      os << "ring arena holds " << p_.ring_floats_ << " floats, ops need "
         << ring;
      issue(Invariant::kRing, -1, -1, p_.ring_floats_, 0, ring, 0, {},
            os.str());
    }
    index_t vals = 0;
    for (std::size_t v = 0; v < p_.values_.size(); ++v) {
      const index_t want = p_.root_[v] == static_cast<ValueId>(v)
                               ? vals
                               : static_cast<index_t>(-1);
      if (p_.val_off_[v] != want) {
        issue(Invariant::kRing, -1, static_cast<int>(v), p_.val_off_[v], 0,
              want, 0, {}, "step-vector offset mismatch");
      }
      if (p_.root_[v] == static_cast<ValueId>(v)) {
        vals += p_.values_[v].channels;
      }
    }
    if (p_.val_floats_ != vals) {
      issue(Invariant::kRing, -1, -1, p_.val_floats_, 0, vals, 0, {},
            "step-vector arena total mismatch");
    }
  }

  // ---- quantized byte-row layout -----------------------------------------
  void check_quant_layout() {
    if (!value_ok(p_.q_stage_) ||
        p_.root_[static_cast<std::size_t>(p_.q_stage_)] != p_.q_stage_) {
      issue(Invariant::kLayout, -1, p_.q_stage_,
            "quantized plan has no valid u8 staging value");
      return;
    }
    for (std::size_t v = 0; v < p_.values_.size(); ++v) {
      if (p_.q_lead_[v] < 0 ||
          p_.q_stride_[v] != p_.q_lead_[v] + p_.values_[v].steps) {
        std::ostringstream os;
        os << "u8 row stride " << p_.q_stride_[v] << " != lead "
           << p_.q_lead_[v] << " + steps " << p_.values_[v].steps;
        issue(Invariant::kLayout, -1, static_cast<int>(v), os.str());
      }
    }
    // i8 conv reads its causal look-back from the zero-point lead; the
    // kernel has no unpadded fallback, so containment is mandatory.
    for (std::size_t i = 0; i < p_.ops_.size(); ++i) {
      const detail::Op& op = p_.ops_[i];
      if (op.kind != detail::OpKind::kConv) {
        continue;
      }
      const std::size_t rin = qroot(op.in0);
      const KernelFootprint fp = Registry::conv_packed_i8_footprint(
          {op.k, op.c_in, op.c_out}, op.dilation);
      if (kQuantCiGroup * p_.q_lead_[rin] < fp.read_before) {
        std::ostringstream os;
        os << "i8 conv needs " << fp.read_before
           << " lead bytes per group row, input has "
           << kQuantCiGroup * p_.q_lead_[rin];
        issue(Invariant::kFootprint, static_cast<int>(i),
              static_cast<int>(rin), kQuantCiGroup * p_.q_lead_[rin], 0,
              fp.read_before, 0, "conv.packed.i8", os.str());
      }
    }
  }

  // ---- byte-arena non-aliasing -------------------------------------------
  void check_quant_arena() {
    std::vector<int> def;
    std::vector<int> last;
    liveness([&](ValueId v) { return qroot(v); }, def, last);
    const auto stage = static_cast<std::size_t>(p_.q_stage_);
    const auto out_root = static_cast<std::size_t>(root(p_.output_));
    std::vector<Region> regions;
    for (std::size_t v = 0; v < p_.values_.size(); ++v) {
      if (p_.root_[v] != static_cast<ValueId>(v) || p_.q_off_[v] < 0) {
        continue;
      }
      if (v == out_root) {
        issue(Invariant::kArenaOverlap, -1, static_cast<int>(v),
              "the float-stored output carries a byte-arena offset");
        continue;
      }
      Region r;
      r.root = static_cast<ValueId>(v);
      r.lo = p_.q_off_[v];
      r.hi = r.lo + static_cast<long long>(
                        quant_groups(p_.values_[v].channels)) *
                        kQuantCiGroup * p_.q_stride_[v];
      if (v == stage) {
        r.start = 0;
        r.end = std::max(last[stage], 0);
      } else if (def[v] < 0) {
        issue(Invariant::kArenaOverlap, -1, static_cast<int>(v),
              "planned u8 value is never produced by any op");
        continue;
      } else {
        r.start = def[v];
        r.end = std::max(last[v], def[v]);
      }
      regions.push_back(r);
    }
    check_regions(regions, p_.q_arena_bytes_, "u8 arena", "bytes");
    for (std::size_t i = 0; i < p_.ops_.size(); ++i) {
      const detail::Op& op = p_.ops_[i];
      const detail::QuantOp& qop = p_.qops_[i];
      const auto planned = [&](ValueId v) {
        const std::size_t r = qroot(v);
        if (p_.q_off_[r] < 0) {
          issue(Invariant::kArenaOverlap, static_cast<int>(i),
                static_cast<int>(r),
                "u8 operand's storage root has no byte-arena offset");
        }
      };
      planned(op.in0);
      if (op.kind == detail::OpKind::kAdd) {
        planned(op.in1);
      }
      const bool writes_output = qroot(op.out) == out_root;
      if (qop.out_float != writes_output) {
        issue(Invariant::kLayout, static_cast<int>(i), op.out,
              "out_float flag disagrees with the op writing the output");
      } else if (!qop.out_float) {
        planned(op.out);
      }
    }
  }

  // ---- quantization parameter sanity -------------------------------------
  void check_quant_params() {
    const auto check_value = [&](std::size_t r, int oi) {
      const quant::QuantParams& qp = p_.qvalue_[r];
      if (!std::isfinite(qp.scale) || qp.scale <= 0.0F ||
          qp.zero_point < 0 || qp.zero_point > 255) {
        std::ostringstream os;
        os << "degenerate u8 affine params: scale=" << qp.scale
           << " zero_point=" << qp.zero_point;
        issue(Invariant::kQuantParams, oi, static_cast<int>(r), os.str());
      }
    };
    check_value(static_cast<std::size_t>(p_.q_stage_), -1);
    const auto finite_consts = [&](int oi, index_t off, index_t count,
                                   const char* what) {
      for (index_t e = 0; e < count; ++e) {
        const float v = p_.qconsts_[static_cast<std::size_t>(off + e)];
        if (!std::isfinite(v)) {
          std::ostringstream os;
          os << what << '[' << e << "] is not finite";
          issue(Invariant::kQuantParams, oi, -1, os.str());
          return;
        }
      }
    };
    for (std::size_t i = 0; i < p_.ops_.size(); ++i) {
      const detail::Op& op = p_.ops_[i];
      const detail::QuantOp& qop = p_.qops_[i];
      const int oi = static_cast<int>(i);
      const std::size_t rout = qroot(op.out);
      check_value(qroot(op.in0), oi);
      if (op.kind == detail::OpKind::kAdd) {
        check_value(qroot(op.in1), oi);
      }
      if (!qop.out_float) {
        check_value(rout, oi);
        const int want_lo = op.relu ? p_.qvalue_[rout].zero_point : 0;
        if (qop.out_lo != want_lo) {
          std::ostringstream os;
          os << "out_lo " << qop.out_lo << " != " << want_lo
             << " (ReLU folds into the lower u8 clamp)";
          issue(Invariant::kQuantParams, oi, op.out, qop.out_lo, 0, want_lo,
                0, {}, os.str());
        }
      } else if (qop.out_lo != 0) {
        issue(Invariant::kQuantParams, oi, op.out,
              "dequantizing store must not clamp (out_lo != 0)");
      }
      if (op.kind == detail::OpKind::kConv ||
          op.kind == detail::OpKind::kLinear) {
        const index_t co_round = (op.c_out + nn::kernels::kQuantCo - 1) /
                                 nn::kernels::kQuantCo *
                                 nn::kernels::kQuantCo;
        const auto pool = static_cast<long long>(p_.qconsts_.size());
        if (qop.m_off >= 0 && qop.m_off + co_round <= pool) {
          finite_consts(oi, qop.m_off, co_round, "requantize multiplier");
        }
        if (qop.b_off >= 0 && qop.b_off + co_round <= pool) {
          finite_consts(oi, qop.b_off, co_round, "requantize bias");
        }
      } else if (!std::isfinite(qop.a_mul) || !std::isfinite(qop.b_mul) ||
                 !std::isfinite(qop.c_add)) {
        issue(Invariant::kQuantParams, oi, -1,
              "scalar requantize terms are not finite");
      }
    }
  }

  // ---- packed s8 weight block / requantize-const pool containment --------
  void check_quant_pools() {
    const index_t wblocks = p_.qweights_.count();
    const auto cpool = static_cast<long long>(p_.qconsts_.size());
    for (std::size_t i = 0; i < p_.ops_.size(); ++i) {
      const detail::Op& op = p_.ops_[i];
      const detail::QuantOp& qop = p_.qops_[i];
      const int oi = static_cast<int>(i);
      if (op.kind != detail::OpKind::kConv &&
          op.kind != detail::OpKind::kLinear) {
        continue;
      }
      nn::kernels::ConvDims wd{};
      wd.c_out = op.c_out;
      if (op.kind == detail::OpKind::kConv) {
        wd.c_in = op.c_in;
        wd.k = op.k;
      } else {
        const auto rv = static_cast<std::size_t>(root(op.in0));
        wd.c_in = quant_groups(p_.values_[rv].channels) * kQuantCiGroup *
                  p_.values_[rv].steps;
        wd.k = 1;
      }
      const index_t wbytes = nn::kernels::packed_weight_bytes_i8(wd);
      if (qop.w_blk < 0 || qop.w_blk >= wblocks) {
        issue(Invariant::kParamPool, oi, -1, qop.w_blk, qop.w_blk + 1, 0,
              wblocks, {},
              "s8 weight block handle falls outside the block table");
      } else if (p_.qweights_.size(qop.w_blk) != wbytes) {
        std::ostringstream os;
        os << "s8 weight block holds " << p_.qweights_.size(qop.w_blk)
           << " bytes, op geometry needs " << wbytes;
        issue(Invariant::kParamPool, oi, -1, p_.qweights_.size(qop.w_blk),
              0, wbytes, 0, {}, os.str());
      }
      const index_t co_round = (op.c_out + nn::kernels::kQuantCo - 1) /
                               nn::kernels::kQuantCo * nn::kernels::kQuantCo;
      const auto consts = [&](index_t off, const char* what) {
        if (off < 0 || static_cast<long long>(off) + co_round > cpool) {
          std::ostringstream os;
          os << what << " spills the requantize-constant pool";
          issue(Invariant::kParamPool, oi, -1, off, off + co_round, 0,
                cpool, {}, os.str());
        }
      };
      consts(qop.m_off, "multiplier vector");
      consts(qop.b_off, "bias vector");
    }
  }

  // ---- quantized binding coherence ---------------------------------------
  void check_quant_bindings() {
    const Registry& reg = Registry::instance();
    const auto mismatch = [&](int oi, const char* key, const char* what) {
      std::ostringstream os;
      os << what << " differs from what the registry binds for the op's "
         << "signature";
      issue(Invariant::kBinding, oi, -1, 0, 0, 0, 0, key, os.str());
    };
    {
      const auto stage = reg.stage_i8();
      if (p_.qstage_fn_ != stage.fn || p_.qstage_meta_ != stage.meta) {
        mismatch(-1, "stage.i8", "input staging binding");
      }
    }
    for (std::size_t i = 0; i < p_.ops_.size(); ++i) {
      const detail::Op& op = p_.ops_[i];
      const detail::QuantOp& qop = p_.qops_[i];
      const int oi = static_cast<int>(i);
      switch (op.kind) {
        case detail::OpKind::kConv: {
          const nn::kernels::ConvSig sig{op.k, op.c_in, op.c_out};
          const auto conv = reg.conv_packed_i8(sig);
          if (qop.bind.conv != conv.fn || qop.bind.meta != conv.meta) {
            mismatch(oi, "conv.packed.i8", "i8 conv binding");
          }
          const auto step = reg.conv_step_i8(sig);
          if (qop.bind.step != step.fn ||
              qop.bind.step_meta != step.meta) {
            mismatch(oi, "conv.step.i8", "i8 streaming step binding");
          }
          break;
        }
        case detail::OpKind::kLinear: {
          const auto rv = static_cast<std::size_t>(root(op.in0));
          const index_t f4 = quant_groups(p_.values_[rv].channels) *
                             kQuantCiGroup * p_.values_[rv].steps;
          const auto lin = reg.conv_packed_i8({1, f4, op.c_out});
          if (qop.bind.conv != lin.fn || qop.bind.meta != lin.meta) {
            mismatch(oi, "conv.packed.i8", "i8 linear binding");
          }
          break;
        }
        case detail::OpKind::kAvgPool:
          if (qop.bind.meta != &Registry::inline_meta()) {
            mismatch(oi, "builtin/inline", "i8 pool meta");
          }
          break;
        case detail::OpKind::kAdd: {
          const auto add = reg.add_i8();
          const nn::kernels::KernelMeta* want_meta =
              qop.out_float ? &Registry::inline_meta() : add.meta;
          if (qop.bind.add != add.fn || qop.bind.meta != want_meta) {
            mismatch(oi, "add.i8", "i8 add binding");
          }
          break;
        }
      }
    }
  }

  // ---- quantized streaming ring / step-vector layout ---------------------
  void check_quant_streaming() {
    if (!p_.streamable_) {
      return;
    }
    if (p_.q_ring_off_.size() != p_.ops_.size() ||
        p_.q_val_off_.size() != p_.values_.size()) {
      issue(Invariant::kRing, -1, -1,
            "quantized streaming layout arrays are missing or mis-sized");
      return;
    }
    index_t ring = 0;
    for (std::size_t i = 0; i < p_.ops_.size(); ++i) {
      const detail::Op& op = p_.ops_[i];
      const index_t want =
          op.kind == detail::OpKind::kConv ? ring : static_cast<index_t>(-1);
      if (p_.q_ring_off_[i] != want) {
        issue(Invariant::kRing, static_cast<int>(i), -1, p_.q_ring_off_[i],
              0, want, 0, {}, "u8 ring offset mismatch");
      }
      if (op.kind == detail::OpKind::kConv) {
        ring += quant_groups(op.c_in) * detail::ring_span(op) *
                kQuantCiGroup;
      }
    }
    if (p_.q_ring_bytes_ != ring) {
      std::ostringstream os;
      os << "u8 ring arena holds " << p_.q_ring_bytes_
         << " bytes, ops need " << ring
         << " (quant_groups(c_in) * ((k-1)*dilation+1) * 4 per conv)";
      issue(Invariant::kRing, -1, -1, p_.q_ring_bytes_, 0, ring, 0, {},
            os.str());
    }
    index_t vals = 0;
    for (std::size_t v = 0; v < p_.values_.size(); ++v) {
      const index_t want = p_.root_[v] == static_cast<ValueId>(v)
                               ? vals
                               : static_cast<index_t>(-1);
      if (p_.q_val_off_[v] != want) {
        issue(Invariant::kRing, -1, static_cast<int>(v), p_.q_val_off_[v],
              0, want, 0, {}, "u8 step-vector offset mismatch");
      }
      if (p_.root_[v] == static_cast<ValueId>(v)) {
        vals += quant_groups(p_.values_[v].channels) * kQuantCiGroup;
      }
    }
    if (p_.q_val_bytes_ != vals) {
      issue(Invariant::kRing, -1, -1, p_.q_val_bytes_, 0, vals, 0, {},
            "u8 step-vector arena total mismatch");
    }
  }

  const CompiledPlan& p_;
  Report report_;
};

Report verify_plan(const CompiledPlan& plan) {
  return PlanVerifier(plan).run();
}

bool set_verify_enabled(bool enabled) {
  return g_verify_enabled.exchange(enabled, std::memory_order_relaxed);
}

bool verify_enabled() {
  return g_verify_enabled.load(std::memory_order_relaxed);
}

void verify_or_throw(const CompiledPlan& plan, const char* where) {
  if (!verify_enabled()) {
    return;
  }
  const Report report = verify_plan(plan);
  PIT_CHECK(report.ok(), where << ": compiled-plan verification failed — "
                               << report.to_string());
}

}  // namespace pit::runtime::analysis
