// Internal vocabulary shared by the per-executor translation units of the
// compiled runtime (plan_builder.cpp, executor_fp32.cpp,
// executor_stream.cpp, quant_lowering.cpp, executor_i8.cpp,
// executor_stream_i8.cpp). Not part of the public interface —
// runtime/compiled_net.hpp and runtime/quantize_plan.hpp stay the only
// headers callers see.
#pragma once

#include <algorithm>
#include <cstdint>

#include "runtime/compiled_net.hpp"

namespace pit::runtime::detail {

// Below this many output floats / bytes an op runs serially: the OpenMP
// fork costs more than the loop (same spirit as the kernel engine's MAC
// threshold).
constexpr index_t kParallelMinFloats = 16384;
constexpr index_t kQParallelMinBytes = 16384;

/// An fp32 operand's buffer at run time: `p` points at the logical
/// (row 0, t = 0) element; consecutive channel rows are `stride` floats
/// apart.
struct RowSpan {
  float* p = nullptr;
  index_t stride = 0;
};

/// A u8 operand's buffer: `p` points at (group row 0, t = 0); group rows
/// are kQuantCiGroup * `stride` bytes apart (`stride` in time steps).
struct QSpan {
  std::uint8_t* p = nullptr;
  index_t stride = 0;
};

inline int clamp_u8(long q, int lo) {
  return static_cast<int>(std::clamp(q, static_cast<long>(lo), 255L));
}

/// Ring slots a streaming conv keeps per input channel: the current input
/// plus the (k-1)*dilation past steps its oldest tap reaches back to.
inline index_t ring_span(const Op& op) {
  return (op.k - 1) * op.dilation + 1;
}

}  // namespace pit::runtime::detail
