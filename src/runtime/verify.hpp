// Static verification pass over the compiled-plan IR (runtime::analysis).
//
// A CompiledPlan is three hand-planned memory layouts (fp32 float arena,
// u8 byte arena, streaming rings) executed through kernel pointers bound
// at plan-build time. Every layout decision is made once, at compile() /
// quantize_plan() time — which means every layout invariant can be PROVED
// once, at the same time, instead of surfacing as UB on some forward()
// months later. verify_plan() re-derives the plan's liveness, layouts,
// and bindings from the op list alone and checks the stored plan against
// them:
//
//   arena non-aliasing   no two simultaneously-live storage roots overlap
//                        in the per-sample arena (fp32 floats, i8 bytes),
//                        padded leads / tile slack / channel-group rows
//                        included. Per-sample disjointness implies batched
//                        disjointness: regions are contiguous blocks
//                        scaled by N (offset*N, size*N), which preserves
//                        interval order.
//   footprint containment every bound kernel's reads and writes stay
//                        inside its operands' planned regions, using the
//                        per-variant read/write footprint model published
//                        by nn::kernels::Registry (leads cover the
//                        (k-1)*dilation causal look-back, slack covers the
//                        register-tile overreach of the packed fp32 path).
//   binding coherence    every OpBinding / QuantBinding is exactly what
//                        the registry binds today for the op's signature
//                        (re-bind and compare), streaming rings are sized
//                        exactly (k-1)*dilation+1 slots per channel, and
//                        quant scales / zero-points are finite,
//                        non-degenerate, and consistent with the lowered
//                        requantize constants.
//
// Failures are structured Issues (op index, value id, offending ranges,
// registry key) — not asserts — so callers and tests can match on the
// violated invariant. NetBuilder::compile() and quantize_plan() run
// verify_or_throw() on every plan they return; see set_verify_enabled()
// for the bench/test escape hatch.
//
// The dynamic layer that enforces the same model at run time (ASan arena
// poisoning, canary slack bytes) lives in runtime/hardening.hpp.
#pragma once

#include <string>
#include <vector>

#include "tensor/shape.hpp"

namespace pit::runtime {

class CompiledPlan;

namespace analysis {

/// The invariant class a structured diagnostic reports against.
enum class Invariant {
  kArenaOverlap,  // live-interval overlap / region outside the arena
  kFootprint,     // kernel footprint not contained in a planned region
  kBinding,       // binding differs from the registry's for the signature
  kRing,          // streaming ring / step-vector layout mismatch
  kQuantParams,   // degenerate or inconsistent quantization parameters
  kParamPool,     // weight/bias/const offset outside its packed pool
  kLayout,        // row-layout bookkeeping (stride != lead+steps+slack...)
};

/// Stable lowercase name of an invariant ("arena-overlap", ...).
const char* invariant_name(Invariant inv);

/// One verification failure, with enough structure to locate the defect:
/// the op and/or value it anchors to, the offending range (floats for the
/// fp32 arena, bytes for the byte arena — the message says which), the
/// conflicting range when two regions collide, and the registry key of
/// the binding involved.
struct Issue {
  Invariant invariant = Invariant::kLayout;
  int op = -1;     // op index, or -1 when the issue is value-scoped
  int value = -1;  // value id, or -1 when the issue is op-scoped
  long long lo = 0, hi = 0;              // offending half-open range
  long long other_lo = 0, other_hi = 0;  // conflicting range (overlaps)
  std::string registry_key;              // bound kernel key, if relevant
  std::string message;
  std::string to_string() const;
};

/// All issues found in one pass (the verifier does not stop at the first).
struct Report {
  std::vector<Issue> issues;
  bool ok() const { return issues.empty(); }
  bool has(Invariant inv) const;
  std::string to_string() const;
};

/// Runs the full static verification pass over a plan. Pure inspection:
/// never mutates the plan, allocates only the report.
Report verify_plan(const CompiledPlan& plan);

/// Verifies and throws pit::Error carrying the formatted report when the
/// plan is invalid (no-op while verification is disabled). `where` names
/// the construction site for the error message.
void verify_or_throw(const CompiledPlan& plan, const char* where);

/// Process-wide toggle for the always-on verification inside
/// NetBuilder::compile() / quantize_plan(). Returns the previous setting.
/// Exists for bench_runtime's with/without-verification plan-build timing
/// — production callers should leave it on.
bool set_verify_enabled(bool enabled);
bool verify_enabled();

/// Friend of CompiledPlan that implements the pass (verify.cpp).
class PlanVerifier;

}  // namespace analysis

}  // namespace pit::runtime
