// Batched fp32 execution of a CompiledPlan. Every op runs through the
// kernel pointer bound at plan-build time (detail::OpBinding) — this TU
// performs no backend resolution and never consults the registry.
#include <algorithm>

#include "nn/kernels/registry.hpp"
#include "runtime/compiled_net.hpp"
#include "runtime/executor_detail.hpp"
#include "runtime/hardening.hpp"
#include "tensor/error.hpp"

namespace pit::runtime {

namespace {

using detail::kParallelMinFloats;
using detail::RowSpan;

void relu_inplace(float* y, index_t count) {
#pragma omp parallel for schedule(static) if (count >= kParallelMinFloats)
  for (index_t i = 0; i < count; ++i) {
    y[i] = y[i] > 0.0F ? y[i] : 0.0F;
  }
}

void exec_conv(const detail::Op& op, const BlockTable<float>& params,
               RowSpan x, RowSpan y, index_t n, bool x_padded) {
  const float* w = params.data(op.w_blk);
  const float* b = op.b_blk >= 0 ? params.data(op.b_blk) : nullptr;
  nn::kernels::ConvDims dims{};
  dims.n = n;
  dims.c_in = op.c_in;
  dims.c_out = op.c_out;
  dims.k = op.k;
  dims.t_in = op.t_in;
  dims.t_out = op.t_out;
  dims.dilation = op.dilation;
  dims.stride = op.stride;
  if (op.packed) {
    // Stride-1 fast path: overwrite semantics with bias and ReLU fused
    // into the kernel's store — no zero-fill, no separate activation pass.
    op.bind.conv(x.p, w, b, y.p, dims, x.stride, y.stride, x_padded,
                 op.relu);
    return;
  }
  // Strided convs take the training kernels (dense layouts only), which
  // accumulate: seed the output with the bias (or zero) instead of paying
  // a zero-fill plus an in-kernel bias pass.
  PIT_CHECK(x.stride == op.t_in && y.stride == op.t_out,
            "CompiledPlan: strided conv requires dense operand layouts");
  const index_t out_floats = n * op.c_out * op.t_out;
  if (b != nullptr) {
#pragma omp parallel for collapse(2) schedule(static) \
    if (out_floats >= kParallelMinFloats)
    for (index_t ni = 0; ni < n; ++ni) {
      for (index_t co = 0; co < op.c_out; ++co) {
        float* row = y.p + (ni * op.c_out + co) * op.t_out;
        std::fill(row, row + op.t_out, b[co]);
      }
    }
  } else {
    std::fill(y.p, y.p + out_floats, 0.0F);
  }
  op.bind.conv_train(x.p, w, nullptr, y.p, dims);
  if (op.relu) {
    relu_inplace(y.p, out_floats);
  }
}

void exec_linear(const detail::Op& op, const BlockTable<float>& params,
                 RowSpan x, RowSpan y, index_t n) {
  // Dense, contiguous operands — guaranteed at compile time (flatten is
  // only legal over dense storage, and dense writers cannot produce
  // padded values), so the buffers are exactly the (n, f) / (n, o)
  // matrices the kernel wants; the row strides are irrelevant here.
  op.bind.linear(x.p, params.data(op.w_blk),
                 op.b_blk >= 0 ? params.data(op.b_blk) : nullptr, y.p, n,
                 op.c_in, op.c_out, op.relu);
}

void exec_avg_pool(const detail::Op& op, RowSpan x, RowSpan y, index_t n) {
  const index_t rows = n * op.c_out;  // pooling keeps the channel count
  const float inv_k = 1.0F / static_cast<float>(op.k);
#pragma omp parallel for schedule(static) \
    if (rows * op.t_out >= kParallelMinFloats)
  for (index_t r = 0; r < rows; ++r) {
    const float* xrow = x.p + r * x.stride;
    float* yrow = y.p + r * y.stride;
    for (index_t to = 0; to < op.t_out; ++to) {
      float acc = 0.0F;
      for (index_t k = 0; k < op.k; ++k) {
        acc += xrow[to * op.stride + k];
      }
      yrow[to] = acc * inv_k;
    }
  }
}

void exec_add(const detail::Op& op, RowSpan a, RowSpan b, RowSpan y,
              index_t n) {
  const index_t rows = n * op.c_out;
  const index_t steps = op.t_out;
  const bool fuse_relu = op.relu;
#pragma omp parallel for schedule(static) \
    if (rows * steps >= kParallelMinFloats)
  for (index_t r = 0; r < rows; ++r) {
    const float* arow = a.p + r * a.stride;
    const float* brow = b.p + r * b.stride;
    float* yrow = y.p + r * y.stride;
    for (index_t t = 0; t < steps; ++t) {
      const float s = arow[t] + brow[t];
      yrow[t] = fuse_relu && s < 0.0F ? 0.0F : s;
    }
  }
}

}  // namespace

Tensor CompiledPlan::forward(const Tensor& input,
                             ExecutionContext& ctx) const {
  // One entry point for both programs: serving layers and facades run a
  // quantized plan unchanged.
  return quantized_ ? forward_quantized(input, ctx, nullptr)
                    : forward_fp32(input, ctx, nullptr);
}

Tensor CompiledPlan::forward_fp32(const Tensor& input, ExecutionContext& ctx,
                                  const ValueHook* hook) const {
  const index_t c = input_channels();
  const index_t t = input_steps();
  const bool flat_ok = t == 1 && input.rank() == 2 && input.dim(1) == c;
  PIT_CHECK(flat_ok || (input.rank() == 3 && input.dim(1) == c &&
                        input.dim(2) == t),
            "CompiledPlan: expected (N, " << c << ", " << t << "), got "
                                          << input.shape().to_string());
  const index_t n = input.dim(0);
  const auto needed = static_cast<std::size_t>(arena_per_sample_ * n);
  // Dynamic enforcement of the verified memory model (runtime/hardening.hpp):
  // kPoison shadows the whole arena and re-opens exactly each op's declared
  // operand regions; kCanary pads the arena tail and each output row's
  // slack with a pattern re-checked after every op.
  const hardening::Mode hmode = hardening::mode();
  const std::size_t reserve =
      hmode == hardening::Mode::kCanary
          ? needed + static_cast<std::size_t>(hardening::kArenaTailPadFloats)
          : needed;
  if (ctx.arena_.size() < reserve) {
    ctx.arena_.resize(reserve);
  }
  float* arena = ctx.arena_.data();
  // The arena vector must never stay poisoned past this forward (resize,
  // destruction, and the next forward's writes need clean shadow) — RAII
  // so a throwing op cannot leak poisoned heap memory.
  hardening::UnpoisonOnExit unpoison_guard(arena, needed * sizeof(float));
  if (hmode == hardening::Mode::kPoison) {
    hardening::poison(arena, needed * sizeof(float));
  } else if (hmode == hardening::Mode::kCanary) {
    hardening::fill_canary(
        arena + needed,
        static_cast<std::size_t>(hardening::kArenaTailPadFloats) *
            sizeof(float));
  }

  const detail::Value& out_value =
      values_[static_cast<std::size_t>(output_)];
  Tensor out = out_value.steps == 1
                   ? Tensor::empty(Shape{n, out_value.channels})
                   : Tensor::empty(
                         Shape{n, out_value.channels, out_value.steps});

  const ValueId in_root = root_[static_cast<std::size_t>(input_)];
  const ValueId out_root = root_[static_cast<std::size_t>(output_)];
  const float* in_data = input.data();
  float* out_data = out.data();

  // Stage the input into its padded arena layout when some conv needs it.
  if (input_stage_ >= 0) {
    const auto si = static_cast<std::size_t>(input_stage_);
    const index_t rows = n * values_[si].channels;
    const index_t steps = values_[si].steps;
    const index_t lead = lead_[si];
    const index_t stride = stride_[si];
    float* base = arena + offsets_[si] * n;
    // Staging overwrites every byte of the region (lead, data, and slack),
    // so the whole block becomes legally addressable here.
    hardening::unpoison(
        base, static_cast<std::size_t>(rows * stride) * sizeof(float));
#pragma omp parallel for schedule(static) \
    if (rows * stride >= kParallelMinFloats)
    for (index_t r = 0; r < rows; ++r) {
      float* row = base + r * stride;
      std::fill(row, row + lead, 0.0F);
      std::copy(in_data + r * steps, in_data + (r + 1) * steps, row + lead);
      std::fill(row + lead + steps, row + stride, 0.0F);
    }
  }

  // Resolves a value to its run-time buffer. Aliases share their root's
  // storage; the input resolves to its padded stage when one exists.
  const auto span = [&](ValueId v) -> RowSpan {
    ValueId r = root_[static_cast<std::size_t>(v)];
    if (r == in_root) {
      if (input_stage_ >= 0) {
        r = input_stage_;
      } else {
        return {const_cast<float*>(in_data),
                values_[static_cast<std::size_t>(r)].steps};
      }
    }
    if (r == out_root) {
      return {out_data, out_value.steps};
    }
    const auto ri = static_cast<std::size_t>(r);
    return {arena + offsets_[ri] * n + lead_[ri], stride_[ri]};
  };
  // Zeroes a freshly produced value's lead region (the materialized
  // causal padding its conv consumer will read).
  const auto zero_lead = [&](ValueId v) {
    const auto r = static_cast<std::size_t>(root_[static_cast<std::size_t>(v)]);
    if (offsets_[r] < 0 || lead_[r] == 0) {
      return;
    }
    const index_t rows = n * values_[r].channels;
    float* base = arena + offsets_[r] * n;
    for (index_t row = 0; row < rows; ++row) {
      float* p = base + row * stride_[r];
      std::fill(p, p + lead_[r], 0.0F);
    }
  };

  // Resolves a value to its arena-resident storage root, or -1 when it
  // lives in an external buffer (the raw input / the output tensor).
  const auto arena_root = [&](ValueId v) -> ValueId {
    ValueId r = root_[static_cast<std::size_t>(v)];
    if (r == in_root) {
      if (input_stage_ < 0) {
        return -1;
      }
      r = input_stage_;
    }
    if (r == out_root || offsets_[static_cast<std::size_t>(r)] < 0) {
      return -1;
    }
    return r;
  };
  // An op's INPUT region is fully readable — data, lead, and slack (the
  // packed kernels' declared read footprint covers the whole row).
  const auto open_input = [&](ValueId v) {
    const ValueId r = arena_root(v);
    if (r < 0) {
      return;
    }
    const auto ri = static_cast<std::size_t>(r);
    hardening::unpoison(arena + offsets_[ri] * n,
                        static_cast<std::size_t>(n * values_[ri].channels *
                                                 stride_[ri]) *
                            sizeof(float));
  };
  // An op's OUTPUT rows open up to their declared write footprint only:
  // lead + data stay writable, the per-row tail slack is (re-)poisoned —
  // arena reuse may have legitimately opened these bytes for an earlier
  // reader — so an out-of-footprint store trips ASan with the faulting
  // kernel frame.
  const auto open_output = [&](ValueId v) {
    const ValueId r = arena_root(v);
    if (r < 0) {
      return;
    }
    const auto ri = static_cast<std::size_t>(r);
    float* base = arena + offsets_[ri] * n;
    const index_t rows = n * values_[ri].channels;
    hardening::unpoison_rows(base, rows, stride_[ri], slack_[ri]);
    if (slack_[ri] > 0) {
      const index_t keep = stride_[ri] - slack_[ri];
      for (index_t row = 0; row < rows; ++row) {
        hardening::poison(base + row * stride_[ri] + keep,
                          static_cast<std::size_t>(slack_[ri]) *
                              sizeof(float));
      }
    }
  };
  // kCanary: pattern-fill the output rows' slack before the kernel runs,
  // re-check it afterwards.
  const auto canary_fill_output = [&](ValueId v) {
    const ValueId r = arena_root(v);
    if (r < 0 || slack_[static_cast<std::size_t>(r)] == 0) {
      return;
    }
    const auto ri = static_cast<std::size_t>(r);
    const index_t keep = lead_[ri] + values_[ri].steps;
    float* base = arena + offsets_[ri] * n;
    const index_t rows = n * values_[ri].channels;
    for (index_t row = 0; row < rows; ++row) {
      hardening::fill_canary(
          base + row * stride_[ri] + keep,
          static_cast<std::size_t>(slack_[ri]) * sizeof(float));
    }
  };
  const auto canary_check_output = [&](ValueId v, int op_index) {
    const ValueId r = arena_root(v);
    if (r < 0 || slack_[static_cast<std::size_t>(r)] == 0) {
      return;
    }
    const auto ri = static_cast<std::size_t>(r);
    const index_t keep = lead_[ri] + values_[ri].steps;
    const float* base = arena + offsets_[ri] * n;
    const index_t rows = n * values_[ri].channels;
    for (index_t row = 0; row < rows; ++row) {
      if (!hardening::check_canary(
              base + row * stride_[ri] + keep,
              static_cast<std::size_t>(slack_[ri]) * sizeof(float))) {
        hardening::raise_canary_failure(
            "forward_fp32", op_index, r, row * stride_[ri] + keep,
            row * stride_[ri] + stride_[ri]);
      }
    }
  };

  if (hook != nullptr) {
    (*hook)(input_, in_data, n * c, t, t);
  }

  for (std::size_t opi = 0; opi < ops_.size(); ++opi) {
    const detail::Op& op = ops_[opi];
    if (hmode == hardening::Mode::kPoison) {
      open_input(op.in0);
      if (op.in1 >= 0) {
        open_input(op.in1);
      }
      open_output(op.out);
    } else if (hmode == hardening::Mode::kCanary) {
      canary_fill_output(op.out);
    }
    switch (op.kind) {
      case detail::OpKind::kConv: {
        bool x_padded = false;
        if (op.packed) {
          ValueId r = root_[static_cast<std::size_t>(op.in0)];
          if (r == in_root && input_stage_ >= 0) {
            r = input_stage_;
          }
          const auto ri = static_cast<std::size_t>(r);
          x_padded = lead_[ri] >= (op.k - 1) * op.dilation &&
                     slack_[ri] >= nn::kernels::kPackTimeTile;
        }
        exec_conv(op, params_, span(op.in0), span(op.out), n, x_padded);
        break;
      }
      case detail::OpKind::kLinear:
        exec_linear(op, params_, span(op.in0), span(op.out), n);
        break;
      case detail::OpKind::kAvgPool:
        exec_avg_pool(op, span(op.in0), span(op.out), n);
        break;
      case detail::OpKind::kAdd:
        exec_add(op, span(op.in0), span(op.in1), span(op.out), n);
        break;
    }
    zero_lead(op.out);
    if (hmode == hardening::Mode::kCanary) {
      canary_check_output(op.out, static_cast<int>(opi));
    }
    if (hook != nullptr) {
      const RowSpan s = span(op.out);
      const detail::Value& v = values_[static_cast<std::size_t>(op.out)];
      (*hook)(op.out, s.p, n * v.channels, v.steps, s.stride);
    }
  }
  if (hmode == hardening::Mode::kCanary &&
      !hardening::check_canary(
          arena + needed,
          static_cast<std::size_t>(hardening::kArenaTailPadFloats) *
              sizeof(float))) {
    hardening::raise_canary_failure("forward_fp32", -1, -1,
                                    static_cast<long long>(needed),
                                    static_cast<long long>(needed) +
                                        hardening::kArenaTailPadFloats);
  }
  return out;
}

}  // namespace pit::runtime
