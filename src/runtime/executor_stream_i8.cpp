// Streaming int8 single-step execution of a quantized CompiledPlan. The
// per-conv MAC loop is the single-step i8 kernel bound at lowering time
// (detail::QuantBinding::step) — this TU only manages the u8 ring buffers
// and per-value quad vectors and never consults the registry.
#include <cstring>

#include "nn/kernels/registry.hpp"
#include "runtime/compiled_net.hpp"
#include "runtime/executor_detail.hpp"
#include "runtime/hardening.hpp"
#include "tensor/error.hpp"

namespace pit::runtime {

namespace {
using nn::kernels::kQuantCiGroup;
using nn::kernels::quant_groups;
}  // namespace

std::size_t CompiledPlan::quant_root(ValueId v) const {
  const auto r = static_cast<std::size_t>(root_[static_cast<std::size_t>(v)]);
  const auto in_root =
      static_cast<std::size_t>(root_[static_cast<std::size_t>(input_)]);
  return r == in_root ? static_cast<std::size_t>(q_stage_) : r;
}

void CompiledPlan::bind_stream_quantized(ExecutionContext& ctx) const {
  if (hardening::mode() != hardening::Mode::kOff) {
    // Dynamic ring-size enforcement for the u8 layout (see bind_stream):
    // quant_groups(c_in) group rows of (k-1)*dilation+1 quad slots per
    // conv, one quad vector per storage root.
    index_t ring = 0;
    index_t vals = 0;
    for (const detail::Op& op : ops_) {
      if (op.kind == detail::OpKind::kConv) {
        ring += quant_groups(op.c_in) * detail::ring_span(op) *
                kQuantCiGroup;
      }
    }
    for (std::size_t v = 0; v < values_.size(); ++v) {
      if (root_[v] == static_cast<ValueId>(v)) {
        vals += quant_groups(values_[v].channels) * kQuantCiGroup;
      }
    }
    PIT_CHECK(q_ring_bytes_ == ring && q_val_bytes_ == vals,
              "bind_stream_quantized: u8 streaming layout holds "
                  << q_ring_bytes_ << "/" << q_val_bytes_
                  << " ring/value bytes, ops need " << ring << "/" << vals);
  }
  // Rings start life holding each conv input's zero-point byte: slots the
  // stream has not reached yet read as real 0.0 — the same causal padding
  // the batched program materializes in its row leads.
  ctx.qstream_ring_.assign(static_cast<std::size_t>(q_ring_bytes_), 0);
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const detail::Op& op = ops_[i];
    if (op.kind != detail::OpKind::kConv) {
      continue;
    }
    const auto zp =
        static_cast<std::uint8_t>(qvalue_[quant_root(op.in0)].zero_point);
    const index_t bytes = quant_groups(op.c_in) *
                          ((op.k - 1) * op.dilation + 1) * kQuantCiGroup;
    std::memset(ctx.qstream_ring_.data() + q_ring_off_[i], zp,
                static_cast<std::size_t>(bytes));
  }
  ctx.qstream_vals_.assign(static_cast<std::size_t>(q_val_bytes_), 0);
}

void CompiledPlan::step_quantized(const float* input, float* output,
                                  ExecutionContext& ctx) const {
  std::uint8_t* rings = ctx.qstream_ring_.data();
  std::uint8_t* vals = ctx.qstream_vals_.data();
  const auto t = static_cast<index_t>(ctx.stream_t_);
  const auto qvec = [&](ValueId v) -> std::uint8_t* {
    return vals + q_val_off_[quant_root(v)];
  };

  // Quantize the input step into its staged quad vector through the same
  // staging kernel as the batched program (a (1, C, 1) batch with no
  // lead), so the rounding arithmetic — and with it the stream's
  // bit-exactness — can never drift from the batched path's.
  {
    const std::size_t stage = quant_root(input_);
    const quant::QuantParams& qp = qvalue_[stage];
    qstage_fn_(input, vals + q_val_off_[stage], /*n=*/1, input_channels(),
               /*steps=*/1, /*lead=*/0, /*stride=*/1, 1.0F / qp.scale,
               qp.zero_point);
  }

  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const detail::Op& op = ops_[i];
    const detail::QuantOp& qop = qops_[i];
    if (op.kind == detail::OpKind::kAdd) {
      const std::uint8_t* a = qvec(op.in0);
      const std::uint8_t* bb = qvec(op.in1);
      if (!qop.out_float) {
        qop.bind.add(a, bb, qvec(op.out), quant_groups(op.c_out),
                     /*steps=*/1, 1, 1, 1, qop.a_mul, qop.b_mul, qop.c_add,
                     qop.out_lo);
      } else {
        // Dequantizing store of the plan output — the same expression as
        // the batched out_float add path in forward_quantized().
        for (index_t ch = 0; ch < op.c_out; ++ch) {
          float v = qop.a_mul * static_cast<float>(a[ch]) +
                    qop.b_mul * static_cast<float>(bb[ch]) + qop.c_add;
          if (op.relu && v < 0.0F) {
            v = 0.0F;
          }
          output[ch] = v;
        }
      }
      continue;
    }
    // Conv: push the current input quads into this op's history ring,
    // then run the bound single-step i8 kernel over the dilated look-back.
    const std::uint8_t* x = qvec(op.in0);
    const index_t span = (op.k - 1) * op.dilation + 1;
    const index_t pos = t % span;
    std::uint8_t* ring = rings + q_ring_off_[i];
    const index_t g_in = quant_groups(op.c_in);
    for (index_t g = 0; g < g_in; ++g) {
      std::memcpy(ring + (g * span + pos) * kQuantCiGroup,
                  x + g * kQuantCiGroup, kQuantCiGroup);
    }
    const float* m = qconsts_.data() + qop.m_off;
    const float* b = qconsts_.data() + qop.b_off;
    qop.bind.step(ring, qweights_.data(qop.w_blk), m, b,
                  qop.out_float ? nullptr : qvec(op.out),
                  qop.out_float ? output : nullptr, op.c_in, op.c_out, op.k,
                  op.dilation, span, pos, op.relu, qop.out_lo);
  }
  ++ctx.stream_t_;
}

}  // namespace pit::runtime
