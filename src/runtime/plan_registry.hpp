// Multi-tenant plan registry: versioned plan cache, shared weight pools,
// and zero-downtime hot swap for the serving stack.
//
// A PlanRegistry owns named models. Each model is a monotonically
// versioned list of compiled plans: a version holds the fp32 CompiledPlan
// and, lazily, an int8 lowering of the same exported network. Compilation
// is memoized on (weights fingerprint, shape class, dtype) — registering
// an identical version twice, or the same weights under two model names,
// returns the cached plan without recompiling — and every packed weight
// block is content-hash interned through the registry's WeightPool, so a
// fleet of versions that differ in one retrained layer shares the
// physical bytes of every unchanged layer (shared_block.hpp).
//
// HOT SWAP. Exactly one version per model is *active*. The serve layer
// resolves the active version per request/open through acquire(), which
// returns a PlanLease: a shared_ptr pin on the plan plus an in-flight
// ticket. swap_active(model, v) flips the active version immediately for
// new acquires, then blocks until every lease and ticket taken against
// the old epoch has drained — when it returns, no in-flight batch or
// mid-step session is still executing the old version (sessions that
// PINNED the old plan at open keep their shared_ptr and finish their
// sequences on it; the old plan's memory is released when the last pin
// drops). The drain protocol is epoch-parity counting:
//
//   epoch (atomic u64)   — bumped once per swap, under registry_mutex_.
//   inflight[epoch & 1]  — work admitted during that epoch's parity.
//
// The lock-free ticket path (per-step hot path) loads the epoch,
// increments the matching parity counter, and re-checks the epoch: if a
// swap flipped it in between, the ticket retries on the new parity — a
// ticket that validates is therefore always visible to the swap's drain
// wait (all ticket/epoch operations are seq_cst). Release decrements and,
// only while a swap is draining, notifies the registry's condition
// variable — the idle-path cost of a ticket is two uncontended atomic
// RMWs, no lock.
//
// LOCK ORDER (extends the serve chain; see scripts/check_invariants.py):
// a ticket release may run under a serve slot mutex, so the registry's
// locks rank strictly after serve's — swap_mutex (per entry, serializes
// swaps of one model) before registry_mutex_ (map, memo, stats, version
// lists). Registry methods never take serve locks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/dataloader.hpp"
#include "nn/module.hpp"
#include "runtime/compiled_net.hpp"
#include "runtime/quantize_plan.hpp"
#include "runtime/shared_block.hpp"

namespace pit::runtime {

class PlanRegistry;

namespace registry_detail {
struct ModelEntry;  // opaque; defined in plan_registry.cpp
}  // namespace registry_detail

/// Which program of a version the serve layer executes. kF32 names the
/// version's primary plan (whatever was registered — for adapter-wrapped
/// quantized plans that plan may itself carry an int8 program); kInt8
/// names the lowering materialized by PlanRegistry::quantized().
enum class PlanDtype : std::uint8_t { kF32, kInt8 };

/// Memoization key for compiled plans: same exported weights + same shape
/// specialization + same dtype = same plan, no recompilation.
struct PlanKey {
  std::uint64_t fingerprint = 0;  ///< weights_fingerprint() of the model
  std::string shape_class;        ///< e.g. "temponet:stream:256"
  PlanDtype dtype = PlanDtype::kF32;

  bool operator==(const PlanKey& o) const {
    return fingerprint == o.fingerprint && dtype == o.dtype &&
           shape_class == o.shape_class;
  }
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const {
    std::uint64_t h = k.fingerprint;
    h = hash_bytes(k.shape_class.data(), k.shape_class.size(), h);
    const auto d = static_cast<std::uint8_t>(k.dtype);
    return static_cast<std::size_t>(hash_bytes(&d, 1, h));
  }
};

/// Registry-wide counters (a snapshot; the registry keeps moving).
struct PlanRegistryStats {
  std::uint64_t compiles = 0;       ///< cold compiles executed
  std::uint64_t compile_hits = 0;   ///< register_version served from memo
  std::uint64_t lowerings = 0;      ///< int8 lowerings materialized
  std::uint64_t lowering_hits = 0;  ///< quantized() served from cache
  std::uint64_t swaps = 0;          ///< completed swap_active calls
  std::uint64_t leases = 0;         ///< acquire() calls
  WeightPoolStats pool;             ///< dedup accounting across plans
};

/// Weight-memory accounting over a model (or the whole registry):
/// logical bytes sum every version's blocks as if private; resident
/// bytes count each physical block once.
struct ModelMemory {
  std::size_t logical_bytes = 0;
  std::size_t resident_bytes = 0;
  double dedup_ratio() const {
    return resident_bytes == 0 ? 1.0
                               : static_cast<double>(logical_bytes) /
                                     static_cast<double>(resident_bytes);
  }
};

/// RAII in-flight marker against one model's current epoch. While any
/// ticket on an epoch parity is live, swap_active() of that model blocks
/// in its drain wait. Move-only; released on destruction.
class InflightTicket {
 public:
  InflightTicket() = default;
  InflightTicket(InflightTicket&& o) noexcept
      : reg_(o.reg_), entry_(o.entry_), parity_(o.parity_) {
    o.reg_ = nullptr;
  }
  InflightTicket& operator=(InflightTicket&& o) noexcept {
    if (this != &o) {
      release();
      reg_ = o.reg_;
      entry_ = o.entry_;
      parity_ = o.parity_;
      o.reg_ = nullptr;
    }
    return *this;
  }
  ~InflightTicket() { release(); }
  InflightTicket(const InflightTicket&) = delete;
  InflightTicket& operator=(const InflightTicket&) = delete;

  void release();
  explicit operator bool() const { return reg_ != nullptr; }

 private:
  friend class PlanRegistry;
  PlanRegistry* reg_ = nullptr;
  registry_detail::ModelEntry* entry_ = nullptr;
  unsigned parity_ = 0;
};

/// A resolved active version: shared_ptr pin on the plan (keeps its
/// weights alive past any swap) plus an InflightTicket (holds the swap's
/// drain until this unit of work finishes). Move-only RAII.
class PlanLease {
 public:
  PlanLease() = default;
  PlanLease(PlanLease&&) noexcept = default;
  PlanLease& operator=(PlanLease&&) noexcept = default;
  PlanLease(const PlanLease&) = delete;
  PlanLease& operator=(const PlanLease&) = delete;

  const CompiledPlan& operator*() const { return *plan_; }
  const CompiledPlan* operator->() const { return plan_.get(); }
  const std::shared_ptr<const CompiledPlan>& plan() const { return plan_; }
  std::uint64_t version() const { return version_; }
  explicit operator bool() const { return plan_ != nullptr; }

  /// Drops the plan pin and the in-flight ticket early.
  void release() {
    plan_.reset();
    ticket_.release();
  }

 private:
  friend class PlanRegistry;
  std::shared_ptr<const CompiledPlan> plan_;
  std::uint64_t version_ = 0;
  InflightTicket ticket_;
};

/// Stable content fingerprint of a model's exported state: hashes every
/// named parameter and buffer (name, shape, values). Buffers are included
/// because batch-norm running statistics fold into the compiled weights.
std::uint64_t weights_fingerprint(const nn::Module& model);

class PlanRegistry : public std::enable_shared_from_this<PlanRegistry> {
 public:
  /// Cold-compile callback: build the plan, interning its packed weight
  /// blocks through the registry's pool. Only runs on a memo miss.
  using CompileFn =
      std::function<std::shared_ptr<const CompiledPlan>(WeightPool&)>;

  // Both out-of-line: ModelEntry is opaque here, and constructing or
  // destroying the entry map needs its complete type.
  PlanRegistry();
  ~PlanRegistry();
  PlanRegistry(const PlanRegistry&) = delete;
  PlanRegistry& operator=(const PlanRegistry&) = delete;

  /// Registers a new version of `model` and returns its version number
  /// (1-based, monotonic per model). On a memo hit — same fingerprint and
  /// shape class as any prior registration — the cached plan is reused
  /// and `compile` never runs; re-registering a plan the model already
  /// holds returns the existing version number instead of growing the
  /// list. The first version of a model becomes active. All versions of
  /// one model must share input/output geometry.
  std::uint64_t register_version(const std::string& model,
                                 std::uint64_t fingerprint,
                                 const std::string& shape_class,
                                 const CompileFn& compile);

  /// Adapter path for already-compiled plans (the single-plan serve
  /// constructors): fingerprints the plan's own packed weights, so
  /// registering the same plan object twice still memo-hits.
  std::uint64_t register_plan(const std::string& model,
                              std::shared_ptr<const CompiledPlan> plan);

  /// Lazily materializes (and caches) the int8 lowering of one version.
  /// The second call for the same version returns the cached plan without
  /// recalibrating; s8 weight blocks intern through the registry pool.
  std::shared_ptr<const CompiledPlan> quantized(
      const std::string& model, std::uint64_t version,
      const data::DataLoader& calibration, QuantizeOptions options = {});

  /// Makes `version` the active version of `model`. New acquires see the
  /// new version immediately; this call returns only after every lease
  /// and ticket taken against the previous epoch has been released — on
  /// return, nothing is still executing the old active version except
  /// sessions that pinned its shared_ptr, which drain on their own.
  void swap_active(const std::string& model, std::uint64_t version);

  /// Pins the active version for one unit of work (a batch, an open).
  /// Throws for an unknown model, or for kInt8 when the active version
  /// has no materialized lowering.
  PlanLease acquire(const std::string& model,
                    PlanDtype dtype = PlanDtype::kF32);

  std::uint64_t active_version(const std::string& model) const;
  std::size_t num_versions(const std::string& model) const;
  bool has_model(const std::string& model) const;

  PlanRegistryStats stats() const;
  /// Dedup accounting across every version (fp32 + int8) of one model.
  ModelMemory memory(const std::string& model) const;
  /// Dedup accounting across the whole registry.
  ModelMemory memory() const;

  WeightPool& pool() { return pool_; }

 private:
  friend class InflightTicket;
  friend class PlanHandle;

  registry_detail::ModelEntry* entry(const std::string& model) const;
  std::uint64_t add_version_locked(const std::string& model,
                                   std::shared_ptr<const CompiledPlan> plan,
                                   std::uint64_t fingerprint,
                                   const std::string& shape_class);
  PlanLease acquire_entry(registry_detail::ModelEntry* e, PlanDtype dtype);
  InflightTicket ticket_entry(registry_detail::ModelEntry* e);
  void release_ticket(registry_detail::ModelEntry* e, unsigned parity);
  static void account_memory_locked(
      const registry_detail::ModelEntry& e, ModelMemory& m,
      std::unordered_map<const void*, std::size_t>& seen);

  WeightPool pool_;
  mutable std::mutex registry_mutex_;
  std::condition_variable drain_cv_;
  // unique_ptr values: ModelEntry addresses stay stable across rehashes
  // (PlanHandle caches them); entries are never erased.
  std::unordered_map<std::string, std::unique_ptr<registry_detail::ModelEntry>>
      models_;
  std::unordered_map<PlanKey, std::shared_ptr<const CompiledPlan>, PlanKeyHash>
      memo_;
  PlanRegistryStats stats_;
};

/// A (registry, model, dtype) triple — what the serve layer holds instead
/// of a bare plan. Copyable; resolves the model's entry once at
/// construction (entries are never erased, so the cached pointer stays
/// valid for the registry's lifetime, which the handle's shared_ptr pins).
class PlanHandle {
 public:
  PlanHandle() = default;
  PlanHandle(std::shared_ptr<PlanRegistry> registry, std::string model,
             PlanDtype dtype = PlanDtype::kF32);

  /// Wraps one already-compiled plan in a fresh one-entry registry — the
  /// adapter the legacy single-plan serve constructors sit on.
  static PlanHandle single(std::shared_ptr<const CompiledPlan> plan);

  /// Pins the active version for one unit of work.
  PlanLease acquire() const;
  /// Lock-free in-flight marker for one step against the current epoch
  /// (the session keeps its own plan pin; the ticket only holds the
  /// swap's drain).
  InflightTicket ticket() const;

  const std::shared_ptr<PlanRegistry>& registry() const { return registry_; }
  const std::string& model() const { return model_; }
  PlanDtype dtype() const { return dtype_; }
  explicit operator bool() const { return registry_ != nullptr; }

 private:
  std::shared_ptr<PlanRegistry> registry_;
  std::string model_;
  PlanDtype dtype_ = PlanDtype::kF32;
  registry_detail::ModelEntry* entry_ = nullptr;
};

}  // namespace pit::runtime
