// Frozen inference runtime for searched PIT networks.
//
// The paper's pitch is that the searched mask/gamma structure collapses
// into a plain dilated TCN that cheap inference engines run fast; this is
// that engine. A CompiledPlan executes a network as a flat op list over one
// pre-planned activation arena:
//
//   compile — the layer sequence is described through NetBuilder,
//   fold    — eval-mode BatchNorm is folded into the preceding conv
//             (w' = w * g/sigma, b' = (b - mu) * g/sigma + beta) and ReLU
//             is fused into the producing op,
//   plan    — every activation gets a liveness-planned offset in a single
//             arena (see arena.hpp): zero per-forward allocation in steady
//             state (the arena grows only when the batch size does).
//             Activations feeding a stride-1 conv are planned in a PADDED
//             row layout — (k-1)*dilation zeroed floats before each
//             channel row and a register tile of slack after it — so the
//             packed conv kernel never does per-tap bounds work,
//   execute — straight through nn::kernels (packed inference kernels /
//             blocked backend, OpenMP over the batch grid) with no
//             autograd tape and no Tensor temporaries; the only tensor
//             built is the returned output.
//
// Arena offsets are planned per batch *sample* and scaled by N at run
// time, so one plan serves every batch size.
//
// THREAD-SAFETY CONTRACT
//
// A CompiledPlan is immutable once NetBuilder::compile() returns: forward()
// and step() are const and touch no plan state besides reads. All mutable
// execution state — the activation arena and the streaming ring buffers —
// lives in an ExecutionContext that the caller passes in. Any number of
// threads may call forward()/step() on ONE shared plan concurrently as long
// as each thread uses its OWN context; a single context must never be used
// from two threads at once. The serving layer (src/serve) builds on exactly
// this split: one shared plan, one context per worker thread.
//
// The CompiledNet facade at the bottom of this header bundles a plan with
// one private context for single-threaded callers; it is NOT thread-safe —
// share the underlying plan() instead.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <memory_resource>
#include <string>
#include <vector>

#include "nn/batchnorm.hpp"
#include "nn/conv1d.hpp"
#include "nn/kernels/registry.hpp"
#include "quant/quantize.hpp"
#include "runtime/shared_block.hpp"
#include "tensor/tensor.hpp"

namespace pit::runtime {

namespace analysis {
class PlanVerifier;  // runtime/verify.cpp: static plan verification pass
}
class PlanMutator;  // tests: seeds plan corruptions the verifier must catch

/// Inference-only snapshot of a causal dilated conv: packed weights and
/// resolved geometry, detached from any Module.
struct FrozenConv {
  index_t c_in = 0;
  index_t c_out = 0;
  index_t k = 0;
  index_t dilation = 1;
  index_t stride = 1;
  std::vector<float> weight;  // (c_out, c_in, k) row-major
  std::vector<float> bias;    // (c_out); empty when the conv has none
};

/// Snapshot of a trained nn::Conv1d.
FrozenConv freeze_conv(const nn::Conv1d& conv);

/// Folds an eval-mode batch-norm into the conv that feeds it:
///   BN(conv(x)) = (g/sigma) * conv(x) + (beta - mu * g/sigma)
/// becomes the same conv with per-output-channel scaled weights and a
/// shifted bias (materialized if the conv had none).
void fold_batchnorm(FrozenConv& conv, const nn::BatchNorm1d& bn);

/// Handle to one activation inside a plan under construction.
using ValueId = int;

namespace detail {

enum class OpKind { kConv, kLinear, kAvgPool, kAdd };

/// Kernels resolved for one fp32 op at plan-build time (the registry is
/// consulted exactly once, in NetBuilder::compile()); the executors call
/// these pointers directly — no per-call backend resolution. `meta` /
/// `step_meta` describe what was bound for describe() output. Ops the
/// executors run inline (avg-pool, the fp32 add) carry only a meta.
struct OpBinding {
  nn::kernels::ConvPackedF32Fn conv = nullptr;      // packed stride-1 conv
  nn::kernels::ConvTrainF32Fn conv_train = nullptr; // strided conv
  nn::kernels::LinearF32Fn linear = nullptr;
  nn::kernels::ConvStepF32Fn step = nullptr;        // streaming single step
  const nn::kernels::KernelMeta* meta = nullptr;
  const nn::kernels::KernelMeta* step_meta = nullptr;
};

struct Op {
  OpKind kind = OpKind::kConv;
  ValueId in0 = -1;
  ValueId in1 = -1;  // second addend of kAdd
  ValueId out = -1;
  bool relu = false;    // activation fused into this op's output write
  bool packed = false;  // conv weights in the inference-packed layout
  index_t c_in = 0, c_out = 0;     // conv/linear geometry (linear: features)
  index_t k = 0;                   // conv taps / pool kernel
  index_t dilation = 1, stride = 1;
  index_t t_in = 0, t_out = 0;
  index_t w_blk = -1, b_blk = -1;  // handles into the plan's param blocks
  OpBinding bind;                  // kernels resolved at plan-build time
};

struct Value {
  index_t channels = 0;
  index_t steps = 0;
  ValueId alias_of = -1;  // shares storage with an earlier value (flatten)
  index_t numel() const { return channels * steps; }
};

/// Per-op int8 lowering (parallel to the op list when the plan is
/// quantized): the op's packed s8 weight block handle, offsets into the
/// plan's float requantize-constant pool, plus the scalar requantize terms
/// of the weight-less ops. Bias, input zero-point correction, and output zero
/// point are all pre-folded into these constants — the kernels only ever
/// compute m * acc + b.
/// Kernels resolved for one quantized op at lowering time (the registry
/// is consulted exactly once, in QuantizedCompiler::quantize()).
struct QuantBinding {
  nn::kernels::ConvPackedI8Fn conv = nullptr;  // conv AND linear (k=1 form)
  nn::kernels::ConvStepI8Fn step = nullptr;    // streaming single step
  nn::kernels::AddI8Fn add = nullptr;
  const nn::kernels::KernelMeta* meta = nullptr;
  const nn::kernels::KernelMeta* step_meta = nullptr;
};

struct QuantOp {
  index_t w_blk = -1;      // s8 weight block handle (conv / linear)
  index_t m_off = -1;      // floats into qconsts_: co_round multipliers
  index_t b_off = -1;      // floats into qconsts_: co_round biases
  float a_mul = 0.0F;      // add / pool: input scalings and offset
  float b_mul = 0.0F;
  float c_add = 0.0F;
  bool out_float = false;  // dequantized store (this op feeds the output)
  int out_lo = 0;          // lower u8 store clamp (ReLU folds in here)
  QuantBinding bind;       // kernels resolved at lowering time
};

}  // namespace detail

class CompiledPlan;

/// Per-thread execution state for a CompiledPlan: the batched activation
/// arena (dtype-aware — a float arena for fp32 plans and a byte arena for
/// quantized plans, each grown only by the plan kind that uses it) plus,
/// for streaming step() execution, the per-conv dilated input history
/// rings and per-value single-step vectors. A context is cheap to
/// construct (buffers grow lazily on first use), is bound to whichever plan
/// last ran it, and must only ever be driven by one thread at a time. It
/// must not outlive the plan it is bound to. One context may serve fp32
/// and quantized plans interchangeably (the arenas are independent).
///
/// ALLOCATION SEAM. Every buffer is a std::pmr vector: a context built
/// with a memory_resource routes all growth and release through it. This
/// is how serve::SessionManager backs a million session contexts with its
/// per-shard caching SessionAllocator instead of a million raw mallocs; a
/// default-constructed context keeps the global new/delete resource, so
/// nothing changes for single-context callers. The resource must outlive
/// the context.
class ExecutionContext {
 public:
  ExecutionContext() = default;
  explicit ExecutionContext(std::pmr::memory_resource* mr)
      : arena_(mr),
        qarena_(mr),
        stream_ring_(mr),
        stream_vals_(mr),
        qstream_ring_(mr),
        qstream_vals_(mr) {}

  /// Forgets the streaming history: the next step() starts a fresh
  /// sequence at t = 0 (implicit causal zero-padding again). The batch
  /// arena is untouched — it carries no state between forwards.
  void reset_stream() {
    stream_plan_ = nullptr;
    stream_t_ = 0;
  }

  /// Time steps consumed since the last reset (streaming mode).
  std::uint64_t stream_position() const { return stream_t_; }

  /// Idle compaction: releases the batched-forward scratch (the fp32 and
  /// u8 arenas — forward() carries no state between calls, so nothing is
  /// lost) back to the memory resource while KEEPING the streaming state:
  /// ring buffers, per-value step vectors, position, and plan binding all
  /// survive, so a compacted streaming session resumes its sequence
  /// untouched. The next forward() simply regrows the arena.
  void compact() {
    release(arena_);
    release(qarena_);
  }

  /// Releases every buffer — batch arenas AND streaming state — and
  /// forgets the stream binding (the next step() starts a fresh
  /// sequence). This is the full teardown a pooled-but-cold session slot
  /// uses to hand its bytes back to the allocator cache.
  void release_buffers() {
    compact();
    release(stream_ring_);
    release(stream_vals_);
    release(qstream_ring_);
    release(qstream_vals_);
    reset_stream();
  }

  /// Bytes currently held by the batched-forward arenas (what compact()
  /// frees). Capacity, not size — this is the malloc footprint.
  std::size_t batch_arena_bytes() const {
    return arena_.capacity() * sizeof(float) + qarena_.capacity();
  }
  /// Bytes currently held by the streaming rings and step vectors (what
  /// survives compact()).
  std::size_t stream_bytes() const {
    return (stream_ring_.capacity() + stream_vals_.capacity()) *
               sizeof(float) +
           qstream_ring_.capacity() + qstream_vals_.capacity();
  }

 private:
  friend class CompiledPlan;

  template <typename V>
  static void release(V& v) {
    // swap-with-empty rather than shrink_to_fit: the standard makes
    // shrink_to_fit a non-binding request, the swap is a guaranteed
    // deallocation (same resource, so the pmr swap is well-formed).
    V(v.get_allocator()).swap(v);
  }

  std::pmr::vector<float> arena_;     // grown to plan arena floats * max N
  std::pmr::vector<std::uint8_t> qarena_;  // byte arena of quantized plans
  const CompiledPlan* stream_plan_ = nullptr;  // rings sized for this plan
  std::pmr::vector<float> stream_ring_;  // per-conv dilated input history
  std::pmr::vector<float> stream_vals_;  // one C-vector per live value
  // Streaming state of quantized plans: the same ring/value split, held
  // as u8 bytes in the channel-group-interleaved layout (rings initialize
  // to each conv input's zero-point byte — the causal padding).
  std::pmr::vector<std::uint8_t> qstream_ring_;
  std::pmr::vector<std::uint8_t> qstream_vals_;
  std::uint64_t stream_t_ = 0;
};

/// An immutable, executable inference plan. Built by NetBuilder::compile().
/// Safe to share across threads — see the thread-safety contract above.
class CompiledPlan {
 public:
  /// Executes the plan on an (N, C, T) batch (or (N, C) when the declared
  /// input has one step). Grad mode is ignored — no tape is ever built —
  /// and nothing is allocated per forward except the returned tensor
  /// (plus a one-time growth of the context's arena when N exceeds all
  /// batches that context has served).
  Tensor forward(const Tensor& input, ExecutionContext& ctx) const;

  /// True when the network can run one time step at a time: every op is a
  /// stride-1 causal conv or an elementwise add, so t_out == t_in
  /// throughout and each conv only ever needs its past (k-1)*dilation
  /// inputs — which the context keeps in per-conv ring buffers.
  bool streamable() const { return streamable_; }

  /// Streaming single-step execution: consumes one time-step vector
  /// (input_channels() floats) and produces one output vector
  /// (output_channels() floats). After T steps from a reset context the
  /// outputs match columns 0..T-1 of forward() on the same sequence —
  /// bit-exactly for quantized plans, whose step runs the int8 program
  /// over u8 ring-buffer history. Requires streamable(); the context's
  /// history before the first step is the implicit causal padding (zeros
  /// for fp32 plans, zero-point bytes for quantized ones).
  void step(const float* input, float* output, ExecutionContext& ctx) const;
  /// Tensor convenience overload: input rank-1 (C,), returns (C_out,).
  Tensor step(const Tensor& input, ExecutionContext& ctx) const;

  index_t input_channels() const;
  index_t input_steps() const;
  index_t output_channels() const;
  index_t output_steps() const;

  // ---- Quantized lowering (see runtime/quantize_plan.hpp) ---------------

  /// True when this plan executes the int8 program: u8 affine activations
  /// in a byte arena, s8 per-channel weights, int32 accumulation, fused
  /// requantize on store. Built by runtime::quantize_plan(); forward()
  /// and step() dispatch automatically, so serving layers need no
  /// changes — a quantized plan of a streamable network streams int8
  /// (u8 ring-buffer history, single-step i8 kernels).
  bool quantized() const { return quantized_; }
  /// Analytic worst-case |quantized - fp32 plan| output bound, valid for
  /// inputs inside the calibrated input range. Requires quantized().
  double quant_error_bound() const;
  /// Probabilistic (RMS-model) estimate of the same output error — the
  /// realistic magnitude, orders tighter than the worst-case bound.
  double quant_error_estimate() const;
  /// Packed s8 weight bytes of the quantized program (0 when fp32-only).
  index_t quant_weight_bytes() const {
    return static_cast<index_t>(qweights_.total_elems());
  }
  /// Byte-arena bytes per batch sample (0 when fp32-only).
  index_t quant_arena_bytes_per_sample() const { return q_arena_bytes_; }
  /// Calibrated affine u8 parameters per value storage root (empty when
  /// fp32-only; aliases report their root's entry). Bit-identical across
  /// quantize_plan() runs over the same calibration stream.
  const std::vector<quant::QuantParams>& activation_quant_params() const {
    return qvalue_;
  }

  /// Public geometry of one executed op, for benches that cross-check the
  /// plan against analytical hardware models (hw::gap8).
  struct OpInfo {
    detail::OpKind kind = detail::OpKind::kConv;
    index_t c_in = 0, c_out = 0, k = 1, dilation = 1, stride = 1;
    index_t t_in = 1, t_out = 1;
    bool relu = false;
    /// Multiply-accumulates per batch sample (0 for kAdd).
    index_t macs() const;
  };
  std::vector<OpInfo> op_infos() const;
  /// Activation arena floats needed per batch sample (liveness-planned;
  /// compare with the sum of all activation sizes to see the reuse).
  index_t arena_floats_per_sample() const { return arena_per_sample_; }
  /// Sum of all planned activation buffer sizes (padding included) per
  /// sample, had nothing been reused.
  index_t activation_floats_per_sample() const;
  /// Packed parameter count (post-folding; BN has disappeared into convs).
  index_t param_floats() const {
    return static_cast<index_t>(params_.total_elems());
  }
  std::size_t num_ops() const { return ops_.size(); }
  /// Visits every shared weight block (fp32 params and s8 qweights) with
  /// (storage pointer, bytes) — the registry's dedup accounting walks this
  /// to count bytes resident once across plans that share blocks.
  void visit_weight_blocks(
      const std::function<void(const void*, std::size_t)>& fn) const {
    for (index_t i = 0; i < params_.count(); ++i) {
      fn(params_.data(i), params_.block(i)->size() * sizeof(float));
    }
    for (index_t i = 0; i < qweights_.count(); ++i) {
      fn(qweights_.data(i), qweights_.block(i)->size());
    }
  }
  /// Order-sensitive content hash over all packed fp32 param blocks — the
  /// architecture fingerprint component derived from the exported weights.
  std::uint64_t param_content_hash() const {
    std::uint64_t h = params_.content_hash();
    if (qweights_.count() > 0) {
      // An int8 lowering shares its source's fp32 blocks verbatim — the
      // s8 table is what distinguishes the two plans' content.
      const std::uint64_t q = qweights_.content_hash();
      h = hash_bytes(&q, sizeof(q), h);
    }
    return h;
  }
  /// Human-readable plan dump: ops, fusions, arena offsets, totals.
  std::string summary() const;
  /// summary() plus the kernel binding of every op — registry key, ISA
  /// level, and specialized-vs-generic — so benches and bug reports can
  /// attribute performance to the exact kernel that ran. Quantized plans
  /// report the i8 bindings (plus the input staging kernel); streamable
  /// plans also show each conv's streaming-step binding.
  std::string describe() const;

 private:
  friend class NetBuilder;
  friend class QuantizedCompiler;  // quantize_plan.cpp: builds/compares
  friend class analysis::PlanVerifier;  // read-only verification pass
  friend class PlanMutator;             // test-only plan corruption
  CompiledPlan() = default;

  void bind_stream(ExecutionContext& ctx) const;
  // Quantized streaming internals (quantize_plan.cpp): alias-resolved
  // storage root in the quantized program (the input maps to its u8
  // staging value), zero-point ring initialization, and the int8 step
  // executor.
  std::size_t quant_root(ValueId v) const;
  void bind_stream_quantized(ExecutionContext& ctx) const;
  void step_quantized(const float* input, float* output,
                      ExecutionContext& ctx) const;

  /// Observation hook for calibration and per-layer diagnostics: invoked
  /// once for the network input and once after each op, with the value id
  /// and its (dense-view) float data — `data` points at (row 0, t = 0),
  /// rows are n * channels, each `steps` long and `stride` floats apart.
  /// The quantized executor dequantizes into a scratch row before calling.
  using ValueHook =
      std::function<void(ValueId, const float* data, index_t rows,
                         index_t steps, index_t stride)>;
  Tensor forward_fp32(const Tensor& input, ExecutionContext& ctx,
                      const ValueHook* hook) const;
  Tensor forward_quantized(const Tensor& input, ExecutionContext& ctx,
                           const ValueHook* hook) const;

  std::vector<detail::Op> ops_;
  std::vector<detail::Value> values_;
  std::vector<ValueId> root_;       // alias-resolved storage id per value
  std::vector<index_t> offsets_;    // per-sample arena offset per root
  std::vector<index_t> lead_;       // zeroed pad floats before each row
  std::vector<index_t> slack_;      // readable floats after each row
  std::vector<index_t> stride_;     // row stride = lead + steps + slack
  BlockTable<float> params_;        // shared packed weight/bias blocks
  ValueId input_ = -1;
  ValueId output_ = -1;
  ValueId input_stage_ = -1;        // padded copy of the input, if needed
  index_t arena_per_sample_ = 0;
  // Streaming layout (valid when streamable_): one history ring per conv
  // op of (k-1)*dilation+1 slots per input channel, one single-step
  // C-vector per storage root.
  bool streamable_ = false;
  std::vector<index_t> ring_off_;   // per op; -1 for non-conv ops
  index_t ring_floats_ = 0;
  std::vector<index_t> val_off_;    // per value root; -1 for aliases
  index_t val_floats_ = 0;
  // Quantized program (valid when quantized_): per-op lowering plus the
  // byte-arena layout — u8 activations in channel-group-interleaved rows,
  // q_lead_ zero-point-filled steps of causal padding per conv input row.
  // Built by QuantizedCompiler; the fp32 section above stays intact for
  // reference runs and per-layer comparisons.
  bool quantized_ = false;
  std::vector<detail::QuantOp> qops_;      // parallel to ops_
  BlockTable<std::int8_t> qweights_;       // shared packed s8 weight blocks
  std::vector<float> qconsts_;             // requantize m / b vectors
  std::vector<quant::QuantParams> qvalue_;  // per value root
  std::vector<index_t> q_lead_;            // steps, per value root
  std::vector<index_t> q_stride_;          // steps, per value root
  std::vector<index_t> q_off_;             // arena bytes/sample, per root
  ValueId q_stage_ = -1;                   // u8 staging copy of the input
  index_t q_arena_bytes_ = 0;
  // Input staging kernel of the quantized program, bound at lowering time.
  nn::kernels::StageI8Fn qstage_fn_ = nullptr;
  const nn::kernels::KernelMeta* qstage_meta_ = nullptr;
  // Quantized streaming layout (valid when streamable_ && quantized_):
  // one u8 history ring per conv op — quant_groups(c_in) group rows of
  // (k-1)*dilation+1 interleaved quad slots — and one single-step u8 quad
  // vector per value root. All offsets/sizes in bytes.
  std::vector<index_t> q_ring_off_;        // per op; -1 for non-conv ops
  index_t q_ring_bytes_ = 0;
  std::vector<index_t> q_val_off_;         // per value root; -1 otherwise
  index_t q_val_bytes_ = 0;
  double q_error_bound_ = 0.0;
  double q_error_estimate_ = 0.0;
  std::vector<double> q_value_bound_;      // per value root
};

/// Records a network as a sequence of fused inference ops, then plans and
/// packages it. Single use: compile() consumes the builder.
class NetBuilder {
 public:
  /// Declares the network input: `channels` x `steps` per sample. Must be
  /// called exactly once, first.
  ValueId input(index_t channels, index_t steps);
  /// y = conv(x) [+ fused ReLU]. Weights/bias are copied into the plan.
  ValueId conv(ValueId x, const FrozenConv& c, bool fuse_relu);
  /// y = x W^T + b [+ fused ReLU] on a flat (steps == 1) value.
  ValueId linear(ValueId x, const Tensor& weight, const Tensor& bias,
                 bool fuse_relu);
  ValueId avg_pool(ValueId x, index_t kernel, index_t stride);
  /// Elementwise y = a + b [+ fused ReLU] (the residual join).
  ValueId add(ValueId a, ValueId b, bool fuse_relu);
  /// (C, T) -> (C*T, 1). Pure aliasing: row-major layout makes the
  /// flattened view the same bytes, so this costs nothing at run time.
  ValueId flatten(ValueId x);

  /// Plans the arena (liveness over the recorded ops) and returns the
  /// executable plan whose result is `output`. When `pool` is given, every
  /// packed weight/bias block is interned through it, so plans sharing a
  /// pool share physical storage for bytewise-identical layers.
  CompiledPlan compile(ValueId output, WeightPool* pool = nullptr) &&;

 private:
  ValueId new_value(index_t channels, index_t steps, ValueId alias_of = -1);
  const detail::Value& value(ValueId v) const;
  index_t push_params(const float* data, index_t count);

  std::vector<detail::Op> ops_;
  std::vector<detail::Value> values_;
  BlockTable<float> params_;
  ValueId input_ = -1;
};

/// Single-threaded convenience facade: one shared plan bundled with one
/// private context, keeping the original pre-split API. NOT thread-safe —
/// concurrent callers must share plan() and bring their own contexts.
class CompiledNet {
 public:
  explicit CompiledNet(CompiledPlan plan)
      : plan_(std::make_shared<const CompiledPlan>(std::move(plan))) {}
  explicit CompiledNet(std::shared_ptr<const CompiledPlan> plan)
      : plan_(std::move(plan)) {}

  Tensor forward(const Tensor& input) { return plan_->forward(input, ctx_); }
  /// Streaming single-step on the facade's private context.
  Tensor step(const Tensor& input) { return plan_->step(input, ctx_); }
  void reset_stream() { ctx_.reset_stream(); }

  /// The immutable plan — hand this (plus per-thread contexts) to
  /// concurrent callers, e.g. serve::InferenceServer.
  const std::shared_ptr<const CompiledPlan>& plan() const { return plan_; }

  bool streamable() const { return plan_->streamable(); }
  index_t input_channels() const { return plan_->input_channels(); }
  index_t input_steps() const { return plan_->input_steps(); }
  index_t output_channels() const { return plan_->output_channels(); }
  index_t output_steps() const { return plan_->output_steps(); }
  index_t arena_floats_per_sample() const {
    return plan_->arena_floats_per_sample();
  }
  index_t activation_floats_per_sample() const {
    return plan_->activation_floats_per_sample();
  }
  index_t param_floats() const { return plan_->param_floats(); }
  std::size_t num_ops() const { return plan_->num_ops(); }
  std::string summary() const { return plan_->summary(); }

 private:
  std::shared_ptr<const CompiledPlan> plan_;
  ExecutionContext ctx_;
};

}  // namespace pit::runtime
