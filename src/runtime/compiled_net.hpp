// Frozen inference runtime for searched PIT networks.
//
// The paper's pitch is that the searched mask/gamma structure collapses
// into a plain dilated TCN that cheap inference engines run fast; this is
// that engine. A CompiledNet executes a network as a flat op list over one
// pre-planned activation arena:
//
//   compile — the layer sequence is described through NetBuilder,
//   fold    — eval-mode BatchNorm is folded into the preceding conv
//             (w' = w * g/sigma, b' = (b - mu) * g/sigma + beta) and ReLU
//             is fused into the producing op,
//   plan    — every activation gets a liveness-planned offset in a single
//             arena (see arena.hpp): zero per-forward allocation in steady
//             state (the arena grows only when the batch size does).
//             Activations feeding a stride-1 conv are planned in a PADDED
//             row layout — (k-1)*dilation zeroed floats before each
//             channel row and a register tile of slack after it — so the
//             packed conv kernel never does per-tap bounds work,
//   execute — straight through nn::kernels (packed inference kernels /
//             blocked backend, OpenMP over the batch grid) with no
//             autograd tape and no Tensor temporaries; the only tensor
//             built is the returned output.
//
// Arena offsets are planned per batch *sample* and scaled by N at run
// time, so one plan serves every batch size.
#pragma once

#include <string>
#include <vector>

#include "nn/batchnorm.hpp"
#include "nn/conv1d.hpp"
#include "tensor/tensor.hpp"

namespace pit::runtime {

/// Inference-only snapshot of a causal dilated conv: packed weights and
/// resolved geometry, detached from any Module.
struct FrozenConv {
  index_t c_in = 0;
  index_t c_out = 0;
  index_t k = 0;
  index_t dilation = 1;
  index_t stride = 1;
  std::vector<float> weight;  // (c_out, c_in, k) row-major
  std::vector<float> bias;    // (c_out); empty when the conv has none
};

/// Snapshot of a trained nn::Conv1d.
FrozenConv freeze_conv(const nn::Conv1d& conv);

/// Folds an eval-mode batch-norm into the conv that feeds it:
///   BN(conv(x)) = (g/sigma) * conv(x) + (beta - mu * g/sigma)
/// becomes the same conv with per-output-channel scaled weights and a
/// shifted bias (materialized if the conv had none).
void fold_batchnorm(FrozenConv& conv, const nn::BatchNorm1d& bn);

/// Handle to one activation inside a plan under construction.
using ValueId = int;

namespace detail {

enum class OpKind { kConv, kLinear, kAvgPool, kAdd };

struct Op {
  OpKind kind = OpKind::kConv;
  ValueId in0 = -1;
  ValueId in1 = -1;  // second addend of kAdd
  ValueId out = -1;
  bool relu = false;    // activation fused into this op's output write
  bool packed = false;  // conv weights in the inference-packed layout
  index_t c_in = 0, c_out = 0;     // conv/linear geometry (linear: features)
  index_t k = 0;                   // conv taps / pool kernel
  index_t dilation = 1, stride = 1;
  index_t t_in = 0, t_out = 0;
  index_t w_off = -1, b_off = -1;  // offsets into the packed param block
};

struct Value {
  index_t channels = 0;
  index_t steps = 0;
  ValueId alias_of = -1;  // shares storage with an earlier value (flatten)
  index_t numel() const { return channels * steps; }
};

}  // namespace detail

/// An immutable, executable inference plan. Built by NetBuilder::compile().
class CompiledNet {
 public:
  /// Executes the plan on an (N, C, T) batch (or (N, C) when the declared
  /// input has one step). Grad mode is ignored — no tape is ever built —
  /// and nothing is allocated per forward except the returned tensor
  /// (plus a one-time arena growth when N exceeds all previous batches).
  Tensor forward(const Tensor& input);

  index_t input_channels() const;
  index_t input_steps() const;
  /// Activation arena floats needed per batch sample (liveness-planned;
  /// compare with the sum of all activation sizes to see the reuse).
  index_t arena_floats_per_sample() const { return arena_per_sample_; }
  /// Sum of all planned activation buffer sizes (padding included) per
  /// sample, had nothing been reused.
  index_t activation_floats_per_sample() const;
  /// Packed parameter count (post-folding; BN has disappeared into convs).
  index_t param_floats() const { return static_cast<index_t>(params_.size()); }
  std::size_t num_ops() const { return ops_.size(); }
  /// Human-readable plan dump: ops, fusions, arena offsets, totals.
  std::string summary() const;

 private:
  friend class NetBuilder;
  CompiledNet() = default;

  std::vector<detail::Op> ops_;
  std::vector<detail::Value> values_;
  std::vector<ValueId> root_;       // alias-resolved storage id per value
  std::vector<index_t> offsets_;    // per-sample arena offset per root
  std::vector<index_t> lead_;       // zeroed pad floats before each row
  std::vector<index_t> slack_;      // readable floats after each row
  std::vector<index_t> stride_;     // row stride = lead + steps + slack
  std::vector<float> params_;       // packed weights/biases of all ops
  ValueId input_ = -1;
  ValueId output_ = -1;
  ValueId input_stage_ = -1;        // padded copy of the input, if needed
  index_t arena_per_sample_ = 0;
  std::vector<float> arena_;        // grown to arena_per_sample_ * max N
};

/// Records a network as a sequence of fused inference ops, then plans and
/// packages it. Single use: compile() consumes the builder.
class NetBuilder {
 public:
  /// Declares the network input: `channels` x `steps` per sample. Must be
  /// called exactly once, first.
  ValueId input(index_t channels, index_t steps);
  /// y = conv(x) [+ fused ReLU]. Weights/bias are copied into the plan.
  ValueId conv(ValueId x, const FrozenConv& c, bool fuse_relu);
  /// y = x W^T + b [+ fused ReLU] on a flat (steps == 1) value.
  ValueId linear(ValueId x, const Tensor& weight, const Tensor& bias,
                 bool fuse_relu);
  ValueId avg_pool(ValueId x, index_t kernel, index_t stride);
  /// Elementwise y = a + b [+ fused ReLU] (the residual join).
  ValueId add(ValueId a, ValueId b, bool fuse_relu);
  /// (C, T) -> (C*T, 1). Pure aliasing: row-major layout makes the
  /// flattened view the same bytes, so this costs nothing at run time.
  ValueId flatten(ValueId x);

  /// Plans the arena (liveness over the recorded ops) and returns the
  /// executable net whose result is `output`.
  CompiledNet compile(ValueId output) &&;

 private:
  ValueId new_value(index_t channels, index_t steps, ValueId alias_of = -1);
  const detail::Value& value(ValueId v) const;
  index_t push_params(const float* data, index_t count);

  std::vector<detail::Op> ops_;
  std::vector<detail::Value> values_;
  std::vector<float> params_;
  ValueId input_ = -1;
};

}  // namespace pit::runtime
