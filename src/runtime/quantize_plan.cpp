#include "runtime/quantize_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "nn/kernels/kernels.hpp"
#include "runtime/arena.hpp"
#include "tensor/error.hpp"

namespace pit::runtime {

namespace {

using nn::kernels::kQuantCiGroup;
using nn::kernels::kQuantCo;
using nn::kernels::quant_groups;

// Below this many output bytes the elementwise quantized ops run serially
// (same spirit as the fp32 executor's float threshold).
constexpr index_t kQParallelMinBytes = 16384;

/// An operand's u8 buffer at run time: `p` points at the logical
/// (group-row 0, t = 0) byte; group rows are 4 * stride bytes apart and
/// samples groups * 4 * stride bytes apart.
struct QSpan {
  std::uint8_t* p = nullptr;
  index_t stride = 0;  // time steps
};

inline int clamp_u8(long q, int lo) {
  return static_cast<int>(std::clamp(q, static_cast<long>(lo), 255L));
}

}  // namespace

// ---- Quantized execution -------------------------------------------------

Tensor CompiledPlan::forward_quantized(const Tensor& input,
                                       ExecutionContext& ctx,
                                       const ValueHook* hook) const {
  PIT_CHECK(quantized_, "forward_quantized: plan has no int8 program");
  const index_t c = input_channels();
  const index_t t = input_steps();
  const bool flat_ok = t == 1 && input.rank() == 2 && input.dim(1) == c;
  PIT_CHECK(flat_ok || (input.rank() == 3 && input.dim(1) == c &&
                        input.dim(2) == t),
            "CompiledPlan: expected (N, " << c << ", " << t << "), got "
                                          << input.shape().to_string());
  const index_t n = input.dim(0);
  const auto needed = static_cast<std::size_t>(q_arena_bytes_ * n);
  if (ctx.qarena_.size() < needed) {
    ctx.qarena_.resize(needed);
  }
  std::uint8_t* arena = ctx.qarena_.data();

  const detail::Value& out_value =
      values_[static_cast<std::size_t>(output_)];
  Tensor out = out_value.steps == 1
                   ? Tensor::empty(Shape{n, out_value.channels})
                   : Tensor::empty(
                         Shape{n, out_value.channels, out_value.steps});
  float* out_data = out.data();

  const ValueId in_root = root_[static_cast<std::size_t>(input_)];
  const ValueId out_root = root_[static_cast<std::size_t>(output_)];

  // Resolves a value to its byte-arena buffer (the input resolves to its
  // staged u8 copy). Only valid for arena-backed values — the output is
  // written as floats by its producing op.
  const auto qspan = [&](ValueId v) -> QSpan {
    ValueId r = root_[static_cast<std::size_t>(v)];
    if (r == in_root) {
      r = q_stage_;
    }
    const auto ri = static_cast<std::size_t>(r);
    PIT_CHECK(q_off_[ri] >= 0, "forward_quantized: value " << v
                                                           << " not planned");
    return {arena + q_off_[ri] * n + kQuantCiGroup * q_lead_[ri],
            q_stride_[ri]};
  };

  // Stage the input: float (N, C, T) -> u8 channel-group rows, with the
  // causal lead filled with the zero-point byte (real 0.0).
  {
    const auto si = static_cast<std::size_t>(q_stage_);
    const quant::QuantParams& qp = qvalue_[si];
    nn::kernels::quantize_interleave_i8(
        input.data(), arena + q_off_[si] * n, n, c, t, q_lead_[si],
        q_stride_[si], 1.0F / qp.scale, qp.zero_point);
  }

  // Refills the zero-point lead of a freshly produced value (arena reuse
  // may have clobbered it; its conv consumer reads it as causal padding).
  const auto refill_lead = [&](ValueId v) {
    const auto r = static_cast<std::size_t>(root_[static_cast<std::size_t>(v)]);
    if (q_off_[r] < 0 || q_lead_[r] == 0) {
      return;
    }
    const index_t rows = n * quant_groups(values_[r].channels);
    const auto zp_byte = static_cast<std::uint8_t>(qvalue_[r].zero_point);
    std::uint8_t* base = arena + q_off_[r] * n;
    for (index_t row = 0; row < rows; ++row) {
      std::memset(base + row * kQuantCiGroup * q_stride_[r], zp_byte,
                  static_cast<std::size_t>(kQuantCiGroup * q_lead_[r]));
    }
  };

  // Dequantizes a produced value into a dense float scratch for the hook.
  std::vector<float> scratch;
  const auto call_hook = [&](ValueId v) {
    if (hook == nullptr) {
      return;
    }
    const detail::Value& val = values_[static_cast<std::size_t>(v)];
    const auto r = static_cast<std::size_t>(root_[static_cast<std::size_t>(v)]);
    if (r == static_cast<std::size_t>(out_root)) {
      (*hook)(v, out_data, n * val.channels, val.steps, val.steps);
      return;
    }
    const QSpan s = qspan(v);
    const quant::QuantParams& qp = qvalue_[r];
    scratch.assign(static_cast<std::size_t>(n * val.numel()), 0.0F);
    const index_t groups = quant_groups(val.channels);
    for (index_t ni = 0; ni < n; ++ni) {
      const std::uint8_t* sample =
          s.p + ni * groups * kQuantCiGroup * s.stride;
      for (index_t ch = 0; ch < val.channels; ++ch) {
        const std::uint8_t* grow =
            sample + (ch / kQuantCiGroup) * kQuantCiGroup * s.stride;
        float* drow =
            scratch.data() + (ni * val.channels + ch) * val.steps;
        for (index_t ts = 0; ts < val.steps; ++ts) {
          drow[ts] = qp.dequantize(
              grow[kQuantCiGroup * ts + ch % kQuantCiGroup]);
        }
      }
    }
    (*hook)(v, scratch.data(), n * val.channels, val.steps, val.steps);
  };

  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const detail::Op& op = ops_[i];
    const detail::QuantOp& qop = qops_[i];
    switch (op.kind) {
      case detail::OpKind::kConv: {
        const float* m = qconsts_.data() + qop.m_off;
        const float* b = qconsts_.data() + qop.b_off;
        nn::kernels::ConvDims dims{};
        dims.n = n;
        dims.c_in = op.c_in;
        dims.c_out = op.c_out;
        dims.k = op.k;
        dims.t_in = op.t_in;
        dims.t_out = op.t_out;
        dims.dilation = op.dilation;
        dims.stride = 1;
        const QSpan x = qspan(op.in0);
        if (qop.out_float) {
          nn::kernels::conv_forward_packed_i8(
              x.p, qweights_.data() + qop.w_off, m, b, nullptr, out_data,
              dims, x.stride, op.t_out, op.relu, qop.out_lo);
        } else {
          const QSpan y = qspan(op.out);
          nn::kernels::conv_forward_packed_i8(
              x.p, qweights_.data() + qop.w_off, m, b, y.p, nullptr, dims,
              x.stride, y.stride, op.relu, qop.out_lo);
        }
        break;
      }
      case detail::OpKind::kLinear: {
        const float* m = qconsts_.data() + qop.m_off;
        const float* b = qconsts_.data() + qop.b_off;
        const auto rv = static_cast<std::size_t>(
            root_[static_cast<std::size_t>(op.in0)]);
        const index_t f4 = quant_groups(values_[rv].channels) *
                           kQuantCiGroup * values_[rv].steps;
        const QSpan x = qspan(op.in0);
        if (qop.out_float) {
          nn::kernels::linear_forward_i8(x.p,
                                         qweights_.data() + qop.w_off, m, b,
                                         nullptr, out_data, n, f4, op.c_out,
                                         op.relu, qop.out_lo);
        } else {
          const QSpan y = qspan(op.out);
          nn::kernels::linear_forward_i8(x.p,
                                         qweights_.data() + qop.w_off, m, b,
                                         y.p, nullptr, n, f4, op.c_out,
                                         op.relu, qop.out_lo);
        }
        break;
      }
      case detail::OpKind::kAvgPool: {
        const QSpan x = qspan(op.in0);
        const index_t groups = quant_groups(op.c_out);
        const index_t rows = n * groups;
        const float a_mul = qop.a_mul;
        const float c_add = qop.c_add;
        const bool out_float = qop.out_float;
        const QSpan y = out_float ? QSpan{} : qspan(op.out);
#pragma omp parallel for schedule(static) \
    if (rows * op.t_out * kQuantCiGroup >= kQParallelMinBytes)
        for (index_t r = 0; r < rows; ++r) {
          const std::uint8_t* xrow = x.p + r * kQuantCiGroup * x.stride;
          for (index_t to = 0; to < op.t_out; ++to) {
            for (index_t j = 0; j < kQuantCiGroup; ++j) {
              std::int32_t sum = 0;
              for (index_t w = 0; w < op.k; ++w) {
                sum += xrow[kQuantCiGroup * (to * op.stride + w) + j];
              }
              const float v = a_mul * static_cast<float>(sum) + c_add;
              if (out_float) {
                const index_t ni = r / groups;
                const index_t ch = (r % groups) * kQuantCiGroup + j;
                if (ch < op.c_out) {
                  out_data[(ni * op.c_out + ch) * op.t_out + to] = v;
                }
              } else {
                y.p[r * kQuantCiGroup * y.stride + kQuantCiGroup * to + j] =
                    static_cast<std::uint8_t>(
                        clamp_u8(std::lrintf(v), qop.out_lo));
              }
            }
          }
        }
        break;
      }
      case detail::OpKind::kAdd: {
        const QSpan a = qspan(op.in0);
        const QSpan bb = qspan(op.in1);
        const index_t groups = quant_groups(op.c_out);
        const index_t rows = n * groups;
        const index_t steps = op.t_out;
        if (!qop.out_float) {
          const QSpan y = qspan(op.out);
          nn::kernels::add_forward_i8(a.p, bb.p, y.p, rows, steps, a.stride,
                                      bb.stride, y.stride, qop.a_mul,
                                      qop.b_mul, qop.c_add, qop.out_lo);
          break;
        }
        // Dequantizing store (this add produces the plan output): rare,
        // so a plain loop over the dense float rows suffices.
        const float a_mul = qop.a_mul;
        const float b_mul = qop.b_mul;
        const float c_add = qop.c_add;
        const bool relu = op.relu;
#pragma omp parallel for schedule(static) \
    if (rows * steps * kQuantCiGroup >= kQParallelMinBytes)
        for (index_t r = 0; r < rows; ++r) {
          const std::uint8_t* arow = a.p + r * kQuantCiGroup * a.stride;
          const std::uint8_t* brow = bb.p + r * kQuantCiGroup * bb.stride;
          for (index_t ts = 0; ts < steps; ++ts) {
            for (index_t j = 0; j < kQuantCiGroup; ++j) {
              const index_t off = kQuantCiGroup * ts + j;
              float v = a_mul * static_cast<float>(arow[off]) +
                        b_mul * static_cast<float>(brow[off]) + c_add;
              if (relu && v < 0.0F) {
                v = 0.0F;
              }
              const index_t ni = r / groups;
              const index_t ch = (r % groups) * kQuantCiGroup + j;
              if (ch < op.c_out) {
                out_data[(ni * op.c_out + ch) * steps + ts] = v;
              }
            }
          }
        }
        break;
      }
    }
    if (!qop.out_float) {
      refill_lead(op.out);
    }
    call_hook(op.out);
  }
  return out;
}

// ---- Quantized streaming execution ---------------------------------------

std::size_t CompiledPlan::quant_root(ValueId v) const {
  const auto r = static_cast<std::size_t>(root_[static_cast<std::size_t>(v)]);
  const auto in_root =
      static_cast<std::size_t>(root_[static_cast<std::size_t>(input_)]);
  return r == in_root ? static_cast<std::size_t>(q_stage_) : r;
}

void CompiledPlan::bind_stream_quantized(ExecutionContext& ctx) const {
  // Rings start life holding each conv input's zero-point byte: slots the
  // stream has not reached yet read as real 0.0 — the same causal padding
  // the batched program materializes in its row leads.
  ctx.qstream_ring_.assign(static_cast<std::size_t>(q_ring_bytes_), 0);
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const detail::Op& op = ops_[i];
    if (op.kind != detail::OpKind::kConv) {
      continue;
    }
    const auto zp =
        static_cast<std::uint8_t>(qvalue_[quant_root(op.in0)].zero_point);
    const index_t bytes = quant_groups(op.c_in) *
                          ((op.k - 1) * op.dilation + 1) * kQuantCiGroup;
    std::memset(ctx.qstream_ring_.data() + q_ring_off_[i], zp,
                static_cast<std::size_t>(bytes));
  }
  ctx.qstream_vals_.assign(static_cast<std::size_t>(q_val_bytes_), 0);
}

void CompiledPlan::step_quantized(const float* input, float* output,
                                  ExecutionContext& ctx) const {
  std::uint8_t* rings = ctx.qstream_ring_.data();
  std::uint8_t* vals = ctx.qstream_vals_.data();
  const auto t = static_cast<index_t>(ctx.stream_t_);
  const auto qvec = [&](ValueId v) -> std::uint8_t* {
    return vals + q_val_off_[quant_root(v)];
  };

  // Quantize the input step into its staged quad vector through the same
  // staging kernel as the batched program (a (1, C, 1) batch with no
  // lead), so the rounding arithmetic — and with it the stream's
  // bit-exactness — can never drift from the batched path's.
  {
    const std::size_t stage = quant_root(input_);
    const quant::QuantParams& qp = qvalue_[stage];
    nn::kernels::quantize_interleave_i8(
        input, vals + q_val_off_[stage], /*n=*/1, input_channels(),
        /*steps=*/1, /*lead=*/0, /*stride=*/1, 1.0F / qp.scale,
        qp.zero_point);
  }

  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const detail::Op& op = ops_[i];
    const detail::QuantOp& qop = qops_[i];
    if (op.kind == detail::OpKind::kAdd) {
      const std::uint8_t* a = qvec(op.in0);
      const std::uint8_t* bb = qvec(op.in1);
      if (!qop.out_float) {
        nn::kernels::add_forward_i8(a, bb, qvec(op.out),
                                    quant_groups(op.c_out), /*steps=*/1,
                                    1, 1, 1, qop.a_mul, qop.b_mul,
                                    qop.c_add, qop.out_lo);
      } else {
        // Dequantizing store of the plan output — the same expression as
        // the batched out_float add path in forward_quantized().
        for (index_t ch = 0; ch < op.c_out; ++ch) {
          float v = qop.a_mul * static_cast<float>(a[ch]) +
                    qop.b_mul * static_cast<float>(bb[ch]) + qop.c_add;
          if (op.relu && v < 0.0F) {
            v = 0.0F;
          }
          output[ch] = v;
        }
      }
      continue;
    }
    // Conv: push the current input quads into this op's history ring,
    // then run the single-step i8 kernel over the dilated look-back.
    const std::uint8_t* x = qvec(op.in0);
    const index_t span = (op.k - 1) * op.dilation + 1;
    const index_t pos = t % span;
    std::uint8_t* ring = rings + q_ring_off_[i];
    const index_t g_in = quant_groups(op.c_in);
    for (index_t g = 0; g < g_in; ++g) {
      std::memcpy(ring + (g * span + pos) * kQuantCiGroup,
                  x + g * kQuantCiGroup, kQuantCiGroup);
    }
    const float* m = qconsts_.data() + qop.m_off;
    const float* b = qconsts_.data() + qop.b_off;
    nn::kernels::conv_step_i8(
        ring, qweights_.data() + qop.w_off, m, b,
        qop.out_float ? nullptr : qvec(op.out),
        qop.out_float ? output : nullptr, op.c_in, op.c_out, op.k,
        op.dilation, span, pos, op.relu, qop.out_lo);
  }
  ++ctx.stream_t_;
}

// ---- Lowering ------------------------------------------------------------

/// Friend of CompiledPlan: builds the int8 program onto a copy of the
/// fp32 plan, and runs the per-layer fp32-vs-int8 comparison.
class QuantizedCompiler {
 public:
  static std::shared_ptr<const CompiledPlan> quantize(
      const CompiledPlan& src, const data::DataLoader& calib,
      const QuantizeOptions& options);
  static std::vector<QuantLayerDelta> compare(const CompiledPlan& q,
                                              const Tensor& input);

 private:
  static std::string op_desc(const detail::Op& op);
};

std::string QuantizedCompiler::op_desc(const detail::Op& op) {
  std::ostringstream os;
  switch (op.kind) {
    case detail::OpKind::kConv:
      os << "conv " << op.c_in << "->" << op.c_out << " k" << op.k << " d"
         << op.dilation;
      break;
    case detail::OpKind::kLinear:
      os << "linear " << op.c_in << "->" << op.c_out;
      break;
    case detail::OpKind::kAvgPool:
      os << "avg_pool k" << op.k << " s" << op.stride;
      break;
    case detail::OpKind::kAdd:
      os << "add";
      break;
  }
  if (op.relu) {
    os << " +relu";
  }
  return os.str();
}

std::shared_ptr<const CompiledPlan> QuantizedCompiler::quantize(
    const CompiledPlan& src, const data::DataLoader& calib,
    const QuantizeOptions& options) {
  // Only the stride-1 packed conv path is lowered (every conv of the
  // reference TCNs after freezing; strided downsampling happens in pools).
  for (const detail::Op& op : src.ops_) {
    PIT_CHECK(op.kind != detail::OpKind::kConv || (op.packed &&
                                                   op.stride == 1),
              "quantize_plan: strided convs have no int8 lowering");
  }

  // ---- calibrate ---------------------------------------------------------
  const std::size_t nsrc_values = src.values_.size();
  std::vector<quant::RangeObserver> observers(
      nsrc_values, quant::RangeObserver(options.observer));
  const CompiledPlan::ValueHook hook =
      [&](ValueId v, const float* data, index_t rows, index_t steps,
          index_t stride) {
        quant::RangeObserver& obs =
            observers[static_cast<std::size_t>(
                src.root_[static_cast<std::size_t>(v)])];
        if (stride == steps) {
          obs.observe({data, static_cast<std::size_t>(rows * steps)});
        } else {
          for (index_t r = 0; r < rows; ++r) {
            obs.observe({data + r * stride,
                         static_cast<std::size_t>(steps)});
          }
        }
      };
  const index_t batches =
      std::min(calib.num_batches(), options.max_calibration_batches);
  PIT_CHECK(batches >= 1, "quantize_plan: empty calibration loader");
  {
    ExecutionContext cctx;
    for (index_t bi = 0; bi < batches; ++bi) {
      src.forward_fp32(calib.batch(bi).inputs, cctx, &hook);
    }
  }

  CompiledPlan q(src);
  q.quantized_ = true;
  // Streamability survives the lowering: a stride-1-conv/add plan streams
  // its int8 program through u8 ring buffers (layout planned below).

  const auto in_root =
      static_cast<std::size_t>(q.root_[static_cast<std::size_t>(q.input_)]);
  const auto out_root =
      static_cast<std::size_t>(q.root_[static_cast<std::size_t>(q.output_)]);

  // The input is always staged (dtype conversion); reuse the fp32 staging
  // value when one exists, otherwise append one. Appended entries extend
  // every per-value array so the retained fp32 program stays consistent.
  if (q.input_stage_ >= 0) {
    q.q_stage_ = q.input_stage_;
  } else {
    const detail::Value in_value = q.values_[in_root];
    q.q_stage_ = static_cast<ValueId>(q.values_.size());
    q.values_.push_back({in_value.channels, in_value.steps, -1});
    q.root_.push_back(q.q_stage_);
    q.lead_.push_back(0);
    q.slack_.push_back(0);
    q.stride_.push_back(in_value.steps);
    q.offsets_.push_back(-1);
  }
  const std::size_t nvals = q.values_.size();
  const auto stage = static_cast<std::size_t>(q.q_stage_);

  // ---- per-value quantization parameters and clip error ------------------
  q.qvalue_.assign(nvals, quant::QuantParams{});
  std::vector<double> clip_err(nvals, 0.0);
  std::vector<double> xmax(nvals, 0.0);
  for (std::size_t v = 0; v < nsrc_values; ++v) {
    if (src.root_[v] != static_cast<ValueId>(v) || !observers[v].seen()) {
      continue;
    }
    q.qvalue_[v] = observers[v].affine_u8_params();
    float lo = 0.0F;
    float hi = 0.0F;
    observers[v].calibrated_range(&lo, &hi);
    clip_err[v] = std::max(
        0.0, std::max(static_cast<double>(lo) - observers[v].min(),
                      static_cast<double>(observers[v].max()) - hi));
    xmax[v] = std::max(std::fabs(static_cast<double>(observers[v].min())),
                       std::fabs(static_cast<double>(observers[v].max())));
  }
  // Propagate to aliases (reporting convenience) and the staging value.
  for (std::size_t v = 0; v < nsrc_values; ++v) {
    const auto r = static_cast<std::size_t>(src.root_[v]);
    if (r != v) {
      q.qvalue_[v] = q.qvalue_[r];
    }
  }
  q.qvalue_[stage] = q.qvalue_[in_root];
  clip_err[stage] = clip_err[in_root];
  xmax[stage] = xmax[in_root];

  // ---- byte-row layout: zero-point lead before every conv input ----------
  q.q_lead_.assign(nvals, 0);
  const auto qroot = [&](ValueId v) -> std::size_t {
    auto r = static_cast<std::size_t>(q.root_[static_cast<std::size_t>(v)]);
    return r == in_root ? stage : r;
  };
  for (const detail::Op& op : q.ops_) {
    if (op.kind == detail::OpKind::kConv) {
      const std::size_t r = qroot(op.in0);
      q.q_lead_[r] =
          std::max(q.q_lead_[r], (op.k - 1) * op.dilation);
    }
  }
  for (std::size_t v = 0; v < nvals; ++v) {
    if (q.values_[v].alias_of >= 0) {
      PIT_CHECK(q.q_lead_[qroot(static_cast<ValueId>(v))] == 0,
                "quantize_plan: flatten of a conv-consumed value is not "
                "supported");
    }
  }
  q.q_stride_.assign(nvals, 0);
  for (std::size_t v = 0; v < nvals; ++v) {
    q.q_stride_[v] = q.q_lead_[v] + q.values_[v].steps;
  }

  // ---- liveness + byte arena (same planner as the fp32 arena) ------------
  std::vector<int> def(nvals, -1);
  std::vector<int> last(nvals, -1);
  for (std::size_t i = 0; i < q.ops_.size(); ++i) {
    const detail::Op& op = q.ops_[i];
    const auto touch = [&](ValueId v, std::vector<int>& slot) {
      if (v >= 0) {
        slot[qroot(v)] = static_cast<int>(i);
      }
    };
    touch(op.in0, last);
    touch(op.in1, last);
    touch(op.out, def);
  }
  std::vector<ArenaRequest> requests;
  std::vector<std::size_t> request_root;
  // Staging block: live from before op 0 until the last input reader.
  requests.push_back({quant_groups(q.values_[stage].channels) *
                          kQuantCiGroup * q.q_stride_[stage],
                      0, std::max(last[stage], 0)});
  request_root.push_back(stage);
  for (std::size_t v = 0; v < nvals; ++v) {
    if (q.root_[v] != static_cast<ValueId>(v) || v == stage ||
        v == out_root || def[v] < 0) {
      continue;
    }
    requests.push_back({quant_groups(q.values_[v].channels) *
                            kQuantCiGroup * q.q_stride_[v],
                        def[v], std::max(last[v], def[v])});
    request_root.push_back(v);
  }
  const ArenaPlan arena = plan_arena(requests);
  q.q_off_.assign(nvals, -1);
  for (std::size_t r = 0; r < request_root.size(); ++r) {
    q.q_off_[request_root[r]] = arena.offsets[r];
  }
  q.q_arena_bytes_ = arena.total;

  // ---- streaming layout: per-conv u8 rings + single-step quad vectors ----
  if (q.streamable_) {
    q.q_ring_off_.assign(q.ops_.size(), -1);
    for (std::size_t i = 0; i < q.ops_.size(); ++i) {
      const detail::Op& op = q.ops_[i];
      if (op.kind == detail::OpKind::kConv) {
        q.q_ring_off_[i] = q.q_ring_bytes_;
        q.q_ring_bytes_ += quant_groups(op.c_in) *
                           ((op.k - 1) * op.dilation + 1) * kQuantCiGroup;
      }
    }
    q.q_val_off_.assign(nvals, -1);
    for (std::size_t v = 0; v < nvals; ++v) {
      if (q.root_[v] == static_cast<ValueId>(v)) {
        q.q_val_off_[v] = q.q_val_bytes_;
        q.q_val_bytes_ +=
            quant_groups(q.values_[v].channels) * kQuantCiGroup;
      }
    }
  }

  // ---- per-op lowering + error propagation -------------------------------
  std::vector<double> bound(nvals, 0.0);   // worst-case |int8 - fp32|
  std::vector<double> var(nvals, 0.0);     // RMS model variance
  {
    const double s_in = q.qvalue_[stage].scale;
    bound[stage] = s_in / 2.0 + clip_err[stage];
    var[stage] = s_in * s_in / 12.0;
    bound[in_root] = bound[stage];
    var[in_root] = var[stage];
  }

  q.qops_.assign(q.ops_.size(), detail::QuantOp{});
  for (std::size_t i = 0; i < q.ops_.size(); ++i) {
    const detail::Op& op = q.ops_[i];
    detail::QuantOp& qop = q.qops_[i];
    const std::size_t rin = qroot(op.in0);
    const std::size_t rout = qroot(op.out);
    qop.out_float = rout == out_root;
    const quant::QuantParams px = q.qvalue_[rin];
    const quant::QuantParams py = q.qvalue_[rout];
    const double e_in = bound[rin];
    const double e_store =
        qop.out_float ? 0.0 : py.scale / 2.0 + clip_err[rout];
    const double var_store =
        qop.out_float
            ? 0.0
            : static_cast<double>(py.scale) * py.scale / 12.0 +
                  clip_err[rout] * clip_err[rout];
    qop.out_lo = (!qop.out_float && op.relu) ? py.zero_point : 0;

    if (op.kind == detail::OpKind::kConv ||
        op.kind == detail::OpKind::kLinear) {
      const bool is_conv = op.kind == detail::OpKind::kConv;
      // Recover the folded float weights from the fp32 program.
      const index_t cnt = op.c_in * (is_conv ? op.k : 1);
      index_t f4 = cnt;  // quantized feature count (pad lanes included)
      std::vector<float> w(static_cast<std::size_t>(op.c_out * cnt));
      if (is_conv) {
        // Undo the fp32 inference packing: wp[(ci*k + i)*co_r4 + co].
        const index_t co_r4 = (op.c_out + nn::kernels::kPackCo - 1) /
                              nn::kernels::kPackCo * nn::kernels::kPackCo;
        for (index_t co = 0; co < op.c_out; ++co) {
          for (index_t ci = 0; ci < op.c_in; ++ci) {
            for (index_t tap = 0; tap < op.k; ++tap) {
              w[static_cast<std::size_t>((co * op.c_in + ci) * op.k + tap)] =
                  q.params_[static_cast<std::size_t>(
                      op.w_off + (ci * op.k + tap) * co_r4 + co)];
            }
          }
        }
      } else {
        // Permute the dense (o, f) columns into the flattened C4 byte
        // order of the input value (pad lanes get zero columns).
        const auto rv = static_cast<std::size_t>(
            q.root_[static_cast<std::size_t>(op.in0)]);
        const index_t c_r = q.values_[rv].channels;
        const index_t t_r = q.values_[rv].steps;
        PIT_CHECK(op.c_in == c_r * t_r,
                  "quantize_plan: linear features " << op.c_in
                                                    << " != " << c_r << "x"
                                                    << t_r);
        f4 = quant_groups(c_r) * kQuantCiGroup * t_r;
        w.assign(static_cast<std::size_t>(op.c_out * f4), 0.0F);
        for (index_t o = 0; o < op.c_out; ++o) {
          for (index_t ch = 0; ch < c_r; ++ch) {
            for (index_t ts = 0; ts < t_r; ++ts) {
              w[static_cast<std::size_t>(
                  o * f4 + (ch / kQuantCiGroup) * kQuantCiGroup * t_r +
                  kQuantCiGroup * ts + ch % kQuantCiGroup)] =
                  q.params_[static_cast<std::size_t>(
                      op.w_off + o * op.c_in + ch * t_r + ts)];
            }
          }
        }
      }
      const index_t row = is_conv ? cnt : f4;

      // Per-output-channel symmetric s8 quantization of the weights.
      std::vector<std::int8_t> wq(w.size());
      std::vector<float> s_w(static_cast<std::size_t>(op.c_out));
      std::vector<std::int32_t> wsum(static_cast<std::size_t>(op.c_out), 0);
      double worst_term = 0.0;
      double worst_var = 0.0;
      for (index_t co = 0; co < op.c_out; ++co) {
        const float* wrow = w.data() + co * row;
        float max_abs = 0.0F;
        double l1 = 0.0;
        double l2 = 0.0;
        for (index_t e = 0; e < row; ++e) {
          max_abs = std::max(max_abs, std::fabs(wrow[e]));
          l1 += std::fabs(static_cast<double>(wrow[e]));
          l2 += static_cast<double>(wrow[e]) * wrow[e];
        }
        const float scale =
            max_abs > 0.0F ? std::max(max_abs / 127.0F, quant::kMinScale)
                           : 1.0F;
        s_w[static_cast<std::size_t>(co)] = scale;
        for (index_t e = 0; e < row; ++e) {
          const auto v = static_cast<std::int32_t>(std::clamp<long>(
              std::lrintf(wrow[e] / scale), -127, 127));
          wq[static_cast<std::size_t>(co * row + e)] =
              static_cast<std::int8_t>(v);
          wsum[static_cast<std::size_t>(co)] += v;
        }
        // |Δy| <= Σ|w||Δx| + Σ|Δw|(|x| + |Δx|), |Δw| <= s_w/2 per weight.
        const double dw = scale / 2.0;
        worst_term = std::max(
            worst_term, l1 * e_in + dw * static_cast<double>(cnt) *
                                        (xmax[rin] + e_in));
        worst_var = std::max(
            worst_var,
            l2 * var[rin] + dw * dw / 3.0 * static_cast<double>(cnt) *
                                (xmax[rin] / 2.0) * (xmax[rin] / 2.0));
      }

      // Pack and emit the requantize constants (bias, zero-point
      // correction, and output zero point folded in).
      nn::kernels::ConvDims wd{};
      wd.c_in = is_conv ? op.c_in : f4;
      wd.c_out = op.c_out;
      wd.k = is_conv ? op.k : 1;
      qop.w_off = static_cast<index_t>(q.qweights_.size());
      q.qweights_.resize(q.qweights_.size() +
                         static_cast<std::size_t>(
                             nn::kernels::packed_weight_bytes_i8(wd)));
      nn::kernels::pack_conv_weight_i8(wq.data(), wd,
                                       q.qweights_.data() + qop.w_off);

      const index_t co_round =
          (op.c_out + kQuantCo - 1) / kQuantCo * kQuantCo;
      qop.m_off = static_cast<index_t>(q.qconsts_.size());
      q.qconsts_.resize(q.qconsts_.size() +
                        static_cast<std::size_t>(co_round));
      qop.b_off = static_cast<index_t>(q.qconsts_.size());
      q.qconsts_.resize(q.qconsts_.size() +
                        static_cast<std::size_t>(co_round));
      float* mv = q.qconsts_.data() + qop.m_off;
      float* bv = q.qconsts_.data() + qop.b_off;
      for (index_t co = 0; co < co_round; ++co) {
        if (co >= op.c_out) {
          mv[co] = 0.0F;
          bv[co] = qop.out_float ? 0.0F
                                 : static_cast<float>(py.zero_point);
          continue;
        }
        const float bias =
            op.b_off >= 0
                ? q.params_[static_cast<std::size_t>(op.b_off + co)]
                : 0.0F;
        const float sw = s_w[static_cast<std::size_t>(co)];
        const auto ws =
            static_cast<float>(wsum[static_cast<std::size_t>(co)]);
        if (qop.out_float) {
          mv[co] = px.scale * sw;
          bv[co] = bias - mv[co] * static_cast<float>(px.zero_point) * ws;
        } else {
          mv[co] = px.scale * sw / py.scale;
          bv[co] = bias / py.scale + static_cast<float>(py.zero_point) -
                   mv[co] * static_cast<float>(px.zero_point) * ws;
        }
      }
      bound[rout] = worst_term + e_store;
      var[rout] = worst_var + var_store;
    } else if (op.kind == detail::OpKind::kAvgPool) {
      const auto inv_k = 1.0F / static_cast<float>(op.k);
      if (qop.out_float) {
        qop.a_mul = px.scale * inv_k;
        qop.c_add = -px.scale * static_cast<float>(px.zero_point);
      } else {
        qop.a_mul = px.scale * inv_k / py.scale;
        qop.c_add = static_cast<float>(py.zero_point) -
                    px.scale / py.scale *
                        static_cast<float>(px.zero_point);
      }
      bound[rout] = e_in + e_store;
      var[rout] = var[rin] + var_store;
    } else {  // kAdd
      const std::size_t rb = qroot(op.in1);
      const quant::QuantParams pb = q.qvalue_[rb];
      if (qop.out_float) {
        qop.a_mul = px.scale;
        qop.b_mul = pb.scale;
        qop.c_add = -px.scale * static_cast<float>(px.zero_point) -
                    pb.scale * static_cast<float>(pb.zero_point);
      } else {
        qop.a_mul = px.scale / py.scale;
        qop.b_mul = pb.scale / py.scale;
        qop.c_add = static_cast<float>(py.zero_point) -
                    qop.a_mul * static_cast<float>(px.zero_point) -
                    qop.b_mul * static_cast<float>(pb.zero_point);
      }
      bound[rout] = e_in + bound[rb] + e_store;
      var[rout] = var[rin] + var[rb] + var_store;
    }
  }

  q.q_value_bound_ = bound;
  q.q_error_bound_ = bound[out_root];
  q.q_error_estimate_ = std::sqrt(var[out_root]);
  return std::make_shared<const CompiledPlan>(std::move(q));
}

std::vector<QuantLayerDelta> QuantizedCompiler::compare(
    const CompiledPlan& q, const Tensor& input) {
  PIT_CHECK(q.quantized_, "compare_quantized_layers: plan is not quantized");
  std::unordered_map<ValueId, std::vector<float>> reference;
  const CompiledPlan::ValueHook capture =
      [&](ValueId v, const float* data, index_t rows, index_t steps,
          index_t stride) {
        std::vector<float>& dst = reference[v];
        dst.resize(static_cast<std::size_t>(rows * steps));
        for (index_t r = 0; r < rows; ++r) {
          std::copy(data + r * stride, data + r * stride + steps,
                    dst.data() + r * steps);
        }
      };
  ExecutionContext ref_ctx;
  q.forward_fp32(input, ref_ctx, &capture);

  std::vector<QuantLayerDelta> deltas;
  std::unordered_map<ValueId, std::size_t> op_of;
  for (std::size_t i = 0; i < q.ops_.size(); ++i) {
    op_of[q.ops_[i].out] = i;
  }
  const CompiledPlan::ValueHook compare_hook =
      [&](ValueId v, const float* data, index_t rows, index_t steps,
          index_t stride) {
        const auto it = op_of.find(v);
        if (it == op_of.end()) {
          return;  // the input value
        }
        const std::vector<float>& ref = reference.at(v);
        double worst = 0.0;
        double total = 0.0;
        for (index_t r = 0; r < rows; ++r) {
          for (index_t s = 0; s < steps; ++s) {
            const double diff = std::fabs(
                static_cast<double>(data[r * stride + s]) -
                ref[static_cast<std::size_t>(r * steps + s)]);
            worst = std::max(worst, diff);
            total += diff;
          }
        }
        QuantLayerDelta d;
        d.op = it->second;
        d.desc = op_desc(q.ops_[it->second]);
        d.max_abs_err = worst;
        d.mean_abs_err =
            total / static_cast<double>(std::max<index_t>(rows * steps, 1));
        d.bound = q.q_value_bound_[static_cast<std::size_t>(
            q.root_[static_cast<std::size_t>(v)])];
        deltas.push_back(d);
      };
  ExecutionContext q_ctx;
  q.forward_quantized(input, q_ctx, &compare_hook);
  std::sort(deltas.begin(), deltas.end(),
            [](const QuantLayerDelta& a, const QuantLayerDelta& b) {
              return a.op < b.op;
            });
  return deltas;
}

// ---- Public API ----------------------------------------------------------

std::shared_ptr<const CompiledPlan> quantize_plan(
    const CompiledPlan& plan, const data::DataLoader& calib,
    const QuantizeOptions& options) {
  return QuantizedCompiler::quantize(plan, calib, options);
}

std::shared_ptr<const CompiledPlan> compile_quantized(
    const models::TempoNet& model, const data::DataLoader& calib,
    const QuantizeOptions& options) {
  return quantize_plan(*compile_plan(model), calib, options);
}

std::shared_ptr<const CompiledPlan> compile_quantized(
    const models::ResTCN& model, index_t input_steps,
    const data::DataLoader& calib, const QuantizeOptions& options) {
  return quantize_plan(*compile_plan(model, input_steps), calib, options);
}

std::vector<QuantLayerDelta> compare_quantized_layers(
    const CompiledPlan& quantized, const Tensor& input) {
  return QuantizedCompiler::compare(quantized, input);
}

}  // namespace pit::runtime
