// Dynamic enforcement of the plan-verifier memory model (runtime/verify.hpp)
// over the execution arenas.
//
// The static pass proves at plan-build time that every kernel's declared
// footprint stays inside its operands' planned regions. This layer makes a
// violation of that declaration — a kernel writing bytes it never declared
// — a hard, attributable failure at run time instead of silent corruption:
//
//   kPoison  (ASan builds) the executors poison the entire per-forward
//            arena extent, then unpoison exactly each op's declared
//            operand regions before invoking its kernel. The per-row tail
//            slack of an op's OUTPUT stays poisoned (kernels declare it
//            read-only for inputs, never written), so an out-of-footprint
//            store trips an AddressSanitizer report carrying the faulting
//            kernel frame. Dead arena regions stay poisoned throughout.
//            ASan shadow granularity is 8 bytes, so the first partial
//            granule of a slack region is conservatively unpoisoned —
//            enforcement starts two floats into the slack.
//
//   kCanary  (any build) a cheaper model for non-ASan binaries: the
//            executors fill each op's output-row slack with a canary
//            pattern before the kernel runs and verify it afterwards, and
//            keep a canary-filled tail pad past the arena's planned end.
//            A corrupted canary throws pit::Error naming the op and value.
//
// Mode resolution (once, at first use): ASan builds default to kPoison;
// PIT_VERIFY=canary selects kCanary anywhere; PIT_VERIFY=off disables.
// Non-ASan builds clamp kPoison to kCanary. Off costs one predictable
// branch per op — nothing on the kernel hot paths themselves.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/shape.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define PIT_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PIT_ASAN 1
#endif
#endif
#ifndef PIT_ASAN
#define PIT_ASAN 0
#endif

namespace pit::runtime::hardening {

inline constexpr bool kAsanBuild = PIT_ASAN != 0;

enum class Mode : std::uint8_t { kOff, kCanary, kPoison };

/// The resolved hardening mode (see header comment for the resolution
/// order). Cached after the first call; safe from any thread.
Mode mode();

/// Overrides the resolved mode (tests/benches). kPoison without ASan
/// clamps to kCanary. Returns the previously effective mode.
Mode set_mode_for_test(Mode m);

/// Canary tail floats appended past the fp32 arena's planned extent in
/// kCanary mode (bytes for the u8 arena use the same count * 4).
inline constexpr index_t kArenaTailPadFloats = 16;

/// The canary byte pattern (0xAB per byte; as a float a tiny denormal-free
/// negative value no kernel produces by accident).
inline constexpr std::uint8_t kCanaryByte = 0xAB;

// ---- raw shadow-memory / canary primitives --------------------------------
// The executors compose these with their own layout knowledge; outside an
// ASan build the poison calls compile to nothing.

void poison(const void* p, std::size_t bytes);
void unpoison(const void* p, std::size_t bytes);

/// Unpoisons `rows` rows of `stride` elements each, keeping the trailing
/// `keep_tail` elements of every row poisoned (the output-slack rule).
/// keep_tail == 0 unpoisons the whole block in one call.
template <typename T>
void unpoison_rows(T* base, index_t rows, index_t stride, index_t keep_tail) {
  if (keep_tail == 0) {
    unpoison(base, static_cast<std::size_t>(rows * stride) * sizeof(T));
    return;
  }
  const index_t keep = stride - keep_tail;
  for (index_t r = 0; r < rows; ++r) {
    unpoison(base + r * stride, static_cast<std::size_t>(keep) * sizeof(T));
  }
}

void fill_canary(void* p, std::size_t bytes);
/// True when every byte of [p, p+bytes) still holds the canary pattern.
bool check_canary(const void* p, std::size_t bytes);

/// Throws pit::Error naming the op/value whose canary region was
/// clobbered (called by the executors when check_canary fails).
[[noreturn]] void raise_canary_failure(const char* where, int op, int value,
                                       long long lo, long long hi);

/// RAII: unpoisons [p, p + bytes) on destruction, so the arena vector is
/// never left poisoned across forwards (vector growth, destruction, and
/// the next forward's memset-style writes must all see clean shadow).
class UnpoisonOnExit {
 public:
  UnpoisonOnExit(const void* p, std::size_t bytes) : p_(p), bytes_(bytes) {}
  UnpoisonOnExit(const UnpoisonOnExit&) = delete;
  UnpoisonOnExit& operator=(const UnpoisonOnExit&) = delete;
  ~UnpoisonOnExit() { unpoison(p_, bytes_); }

 private:
  const void* p_;
  std::size_t bytes_;
};

}  // namespace pit::runtime::hardening
