#include "runtime/compile_models.hpp"

#include "core/network_export.hpp"
#include "core/pit_conv1d.hpp"
#include "tensor/error.hpp"

namespace pit::runtime {

FrozenConv freeze_temporal_conv(const nn::Module& conv) {
  if (const auto* plain = dynamic_cast<const nn::Conv1d*>(&conv)) {
    return freeze_conv(*plain);
  }
  if (const auto* pit = dynamic_cast<const core::PITConv1d*>(&conv)) {
    FrozenConv out;
    out.c_in = pit->in_channels();
    out.c_out = pit->out_channels();
    out.k = pit->current_alive_taps();
    out.dilation = pit->current_dilation();
    out.stride = pit->stride();
    const Tensor w = core::exported_weight(*pit);
    out.weight.assign(w.span().begin(), w.span().end());
    if (pit->bias().defined()) {
      const auto b = pit->bias().span();
      out.bias.assign(b.begin(), b.end());
    }
    return out;
  }
  PIT_CHECK(false,
            "freeze_temporal_conv: module is neither nn::Conv1d nor "
            "core::PITConv1d");
  return {};  // unreachable
}

std::shared_ptr<const CompiledPlan> compile_plan(
    const models::TempoNet& model, WeightPool* pool) {
  const models::TempoNetConfig& cfg = model.config();
  NetBuilder b;
  ValueId x = b.input(cfg.input_channels, cfg.input_length);
  const std::vector<nn::Module*> convs = model.temporal_convs();
  PIT_CHECK(convs.size() == 7, "compile(TempoNet): expected 7 convs");
  std::size_t pool_idx = 0;
  for (std::size_t i = 0; i < convs.size(); ++i) {
    FrozenConv fc = freeze_temporal_conv(*convs[i]);
    fold_batchnorm(fc, model.norm(i));
    x = b.conv(x, fc, /*fuse_relu=*/true);
    // Pools close block 1 (after conv 2), block 2 (conv 4), block 3 (conv 6).
    if (i == 2 || i == 4 || i == 6) {
      const nn::AvgPool1d& pool = model.pool(pool_idx++);
      x = b.avg_pool(x, pool.kernel(), pool.stride());
    }
  }
  x = b.flatten(x);
  x = b.linear(x, model.fc1().weight(), model.fc1().bias(),
               /*fuse_relu=*/true);
  x = b.linear(x, model.fc2().weight(), model.fc2().bias(),
               /*fuse_relu=*/false);
  return std::make_shared<const CompiledPlan>(std::move(b).compile(x, pool));
}

std::shared_ptr<const CompiledPlan> compile_plan(const models::ResTCN& model,
                                                 index_t input_steps,
                                                 WeightPool* pool) {
  const models::ResTcnConfig& cfg = model.config();
  NetBuilder b;
  ValueId x = b.input(cfg.input_channels, input_steps);
  const std::vector<nn::Module*> convs = model.temporal_convs();
  PIT_CHECK(convs.size() == 2 * model.num_blocks(),
            "compile(ResTCN): " << convs.size() << " convs for "
                                << model.num_blocks() << " blocks");
  for (std::size_t blk = 0; blk < model.num_blocks(); ++blk) {
    ValueId y = b.conv(x, freeze_temporal_conv(*convs[2 * blk]),
                       /*fuse_relu=*/true);
    y = b.conv(y, freeze_temporal_conv(*convs[2 * blk + 1]),
               /*fuse_relu=*/true);
    const nn::Conv1d* down = model.downsample(blk);
    const ValueId res =
        down != nullptr ? b.conv(x, freeze_conv(*down), /*fuse_relu=*/false)
                        : x;
    x = b.add(y, res, /*fuse_relu=*/true);
  }
  x = b.conv(x, freeze_conv(model.head()), /*fuse_relu=*/false);
  return std::make_shared<const CompiledPlan>(std::move(b).compile(x, pool));
}

std::shared_ptr<const CompiledPlan> compile_stream_backbone(
    const models::TempoNet& model, index_t input_steps, WeightPool* pool) {
  const models::TempoNetConfig& cfg = model.config();
  NetBuilder b;
  ValueId x = b.input(cfg.input_channels, input_steps);
  const std::vector<nn::Module*> convs = model.temporal_convs();
  PIT_CHECK(convs.size() == 7,
            "compile_stream_backbone(TempoNet): expected 7 convs");
  for (std::size_t i = 0; i < convs.size(); ++i) {
    FrozenConv fc = freeze_temporal_conv(*convs[i]);
    PIT_CHECK(fc.stride == 1,
              "compile_stream_backbone(TempoNet): conv " << i
                                                         << " is strided");
    fold_batchnorm(fc, model.norm(i));
    x = b.conv(x, fc, /*fuse_relu=*/true);
  }
  auto plan = std::make_shared<const CompiledPlan>(std::move(b).compile(x, pool));
  PIT_CHECK(plan->streamable(),
            "compile_stream_backbone(TempoNet): plan is not streamable");
  return plan;
}

CompiledNet compile(const models::TempoNet& model) {
  return CompiledNet(compile_plan(model));
}

CompiledNet compile(const models::ResTCN& model, index_t input_steps) {
  return CompiledNet(compile_plan(model, input_steps));
}

}  // namespace pit::runtime
