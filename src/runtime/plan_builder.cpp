// Plan construction: module freezing, BN folding, the NetBuilder graph
// recorder, arena/streaming layout planning, and the plan-build-time kernel
// binding that resolves every op to a concrete registry kernel exactly
// once. Execution lives in the executor_*.cpp translation units.
#include <algorithm>
#include <cmath>
#include <sstream>

#include "nn/kernels/registry.hpp"
#include "runtime/arena.hpp"
#include "runtime/compiled_net.hpp"
#include "runtime/executor_detail.hpp"
#include "runtime/verify.hpp"
#include "tensor/error.hpp"

namespace pit::runtime {

FrozenConv freeze_conv(const nn::Conv1d& conv) {
  FrozenConv out;
  out.c_in = conv.in_channels();
  out.c_out = conv.out_channels();
  out.k = conv.kernel_size();
  out.dilation = conv.dilation();
  out.stride = conv.stride();
  const auto w = conv.weight().span();
  out.weight.assign(w.begin(), w.end());
  if (conv.has_bias()) {
    const auto b = conv.bias().span();
    out.bias.assign(b.begin(), b.end());
  }
  return out;
}

void fold_batchnorm(FrozenConv& conv, const nn::BatchNorm1d& bn) {
  PIT_CHECK(bn.num_features() == conv.c_out,
            "fold_batchnorm: " << bn.num_features() << " BN features for "
                               << conv.c_out << " conv channels");
  const float* g = bn.gamma().data();
  const float* beta = bn.beta().data();
  const float* mean = bn.running_mean().data();
  const float* var = bn.running_var().data();
  if (conv.bias.empty()) {
    conv.bias.assign(static_cast<std::size_t>(conv.c_out), 0.0F);
  }
  const index_t per_channel = conv.c_in * conv.k;
  for (index_t co = 0; co < conv.c_out; ++co) {
    const float scale = g[co] / std::sqrt(var[co] + bn.eps());
    float* wrow = conv.weight.data() + co * per_channel;
    for (index_t i = 0; i < per_channel; ++i) {
      wrow[i] *= scale;
    }
    conv.bias[static_cast<std::size_t>(co)] =
        scale * (conv.bias[static_cast<std::size_t>(co)] - mean[co]) +
        beta[co];
  }
}

// ---- NetBuilder ----------------------------------------------------------

ValueId NetBuilder::new_value(index_t channels, index_t steps,
                              ValueId alias_of) {
  values_.push_back({channels, steps, alias_of});
  return static_cast<ValueId>(values_.size()) - 1;
}

const detail::Value& NetBuilder::value(ValueId v) const {
  PIT_CHECK(v >= 0 && v < static_cast<ValueId>(values_.size()),
            "NetBuilder: unknown value " << v);
  return values_[static_cast<std::size_t>(v)];
}

index_t NetBuilder::push_params(const float* data, index_t count) {
  return params_.add(
      std::vector<float>(data, data + static_cast<std::size_t>(count)));
}

ValueId NetBuilder::input(index_t channels, index_t steps) {
  PIT_CHECK(input_ < 0, "NetBuilder: input already declared");
  PIT_CHECK(channels >= 1 && steps >= 1,
            "NetBuilder: input " << channels << "x" << steps);
  input_ = new_value(channels, steps);
  return input_;
}

ValueId NetBuilder::conv(ValueId x, const FrozenConv& c, bool fuse_relu) {
  const detail::Value& in = value(x);
  PIT_CHECK(in.channels == c.c_in, "NetBuilder::conv: input has "
                                       << in.channels << " channels, conv "
                                       << c.c_in);
  PIT_CHECK(c.k >= 1 && c.dilation >= 1 && c.stride >= 1,
            "NetBuilder::conv: bad geometry");
  PIT_CHECK(static_cast<index_t>(c.weight.size()) == c.c_out * c.c_in * c.k,
            "NetBuilder::conv: weight size " << c.weight.size());
  PIT_CHECK(c.bias.empty() ||
                static_cast<index_t>(c.bias.size()) == c.c_out,
            "NetBuilder::conv: bias size " << c.bias.size());
  detail::Op op;
  op.kind = detail::OpKind::kConv;
  op.in0 = x;
  op.relu = fuse_relu;
  op.c_in = c.c_in;
  op.c_out = c.c_out;
  op.k = c.k;
  op.dilation = c.dilation;
  op.stride = c.stride;
  op.t_in = in.steps;
  op.t_out = nn::causal_conv1d_output_steps(in.steps, c.stride);
  if (c.stride == 1) {
    // Stride-1 convs (the TCN hot path) get the inference-packed weight
    // layout so execution takes the packed conv kernels.
    op.packed = true;
    nn::kernels::ConvDims dims{};
    dims.c_in = c.c_in;
    dims.c_out = c.c_out;
    dims.k = c.k;
    const index_t packed_floats = nn::kernels::packed_weight_floats(dims);
    std::vector<float> packed(static_cast<std::size_t>(packed_floats));
    nn::kernels::pack_conv_weight(c.weight.data(), dims, packed.data());
    op.w_blk = params_.add(std::move(packed));
  } else {
    op.w_blk = push_params(c.weight.data(),
                           static_cast<index_t>(c.weight.size()));
  }
  op.b_blk = c.bias.empty()
                 ? -1
                 : push_params(c.bias.data(),
                               static_cast<index_t>(c.bias.size()));
  op.out = new_value(c.c_out, op.t_out);
  ops_.push_back(op);
  return op.out;
}

ValueId NetBuilder::linear(ValueId x, const Tensor& weight, const Tensor& bias,
                           bool fuse_relu) {
  const detail::Value& in = value(x);
  PIT_CHECK(in.steps == 1,
            "NetBuilder::linear: input must be flat (steps == 1), got "
                << in.channels << "x" << in.steps << " — flatten() first");
  PIT_CHECK(weight.rank() == 2 && weight.dim(1) == in.channels,
            "NetBuilder::linear: weight " << weight.shape().to_string()
                                          << " for " << in.channels
                                          << " features");
  detail::Op op;
  op.kind = detail::OpKind::kLinear;
  op.in0 = x;
  op.relu = fuse_relu;
  op.c_in = weight.dim(1);
  op.c_out = weight.dim(0);
  op.t_in = 1;
  op.t_out = 1;
  op.w_blk = push_params(weight.data(), weight.numel());
  op.b_blk = -1;
  if (bias.defined()) {
    PIT_CHECK(bias.rank() == 1 && bias.dim(0) == op.c_out,
              "NetBuilder::linear: bias " << bias.shape().to_string());
    op.b_blk = push_params(bias.data(), bias.numel());
  }
  op.out = new_value(op.c_out, 1);
  ops_.push_back(op);
  return op.out;
}

ValueId NetBuilder::avg_pool(ValueId x, index_t kernel, index_t stride) {
  const detail::Value& in = value(x);
  PIT_CHECK(kernel >= 1 && stride >= 1 && in.steps >= kernel,
            "NetBuilder::avg_pool: kernel=" << kernel << " stride=" << stride
                                            << " over " << in.steps
                                            << " steps");
  detail::Op op;
  op.kind = detail::OpKind::kAvgPool;
  op.in0 = x;
  op.c_in = in.channels;
  op.c_out = in.channels;
  op.k = kernel;
  op.stride = stride;
  op.t_in = in.steps;
  op.t_out = (in.steps - kernel) / stride + 1;
  op.out = new_value(in.channels, op.t_out);
  ops_.push_back(op);
  return op.out;
}

ValueId NetBuilder::add(ValueId a, ValueId b, bool fuse_relu) {
  const detail::Value& va = value(a);
  const detail::Value& vb = value(b);
  PIT_CHECK(va.channels == vb.channels && va.steps == vb.steps,
            "NetBuilder::add: shape mismatch " << va.channels << "x" << va.steps
                                               << " vs " << vb.channels << "x"
                                               << vb.steps);
  detail::Op op;
  op.kind = detail::OpKind::kAdd;
  op.in0 = a;
  op.in1 = b;
  op.relu = fuse_relu;
  op.c_in = va.channels;
  op.c_out = va.channels;
  op.t_in = va.steps;
  op.t_out = va.steps;
  op.out = new_value(va.channels, va.steps);
  ops_.push_back(op);
  return op.out;
}

ValueId NetBuilder::flatten(ValueId x) {
  const detail::Value& in = value(x);
  return new_value(in.channels * in.steps, 1, x);
}

CompiledPlan NetBuilder::compile(ValueId output, WeightPool* pool) && {
  PIT_CHECK(input_ >= 0, "NetBuilder: no input declared");
  PIT_CHECK(output >= 0 && output < static_cast<ValueId>(values_.size()),
            "NetBuilder: unknown output value " << output);
  PIT_CHECK(!ops_.empty(), "NetBuilder: empty network");

  CompiledPlan net;
  net.ops_ = std::move(ops_);
  net.values_ = std::move(values_);
  net.params_ = std::move(params_);
  if (pool != nullptr) {
    // Re-intern every packed block through the shared pool: plans compiled
    // against one pool share physical storage for identical layers.
    net.params_.intern_all(*pool);
  }
  net.input_ = input_;
  net.output_ = output;

  // Resolve alias chains to storage roots (aliases only point backwards).
  net.root_.resize(net.values_.size());
  for (std::size_t v = 0; v < net.values_.size(); ++v) {
    const ValueId a = net.values_[v].alias_of;
    net.root_[v] = a < 0 ? static_cast<ValueId>(v)
                         : net.root_[static_cast<std::size_t>(a)];
  }
  const ValueId in_root = net.root_[static_cast<std::size_t>(net.input_)];
  const ValueId out_root = net.root_[static_cast<std::size_t>(net.output_)];
  PIT_CHECK(out_root != in_root,
            "NetBuilder: the output aliases the input; nothing to execute");
  PIT_CHECK(net.values_[static_cast<std::size_t>(net.output_)].alias_of < 0,
            "NetBuilder: the output must be an op result, not a flatten "
            "view");

  // Liveness per storage root: defined by its producing op, dead after its
  // last reader. The input and output live in external buffers.
  std::vector<int> def(net.values_.size(), -1);
  std::vector<int> last(net.values_.size(), -1);
  for (std::size_t i = 0; i < net.ops_.size(); ++i) {
    const detail::Op& op = net.ops_[i];
    const auto touch = [&](ValueId v, std::vector<int>& slot) {
      if (v >= 0) {
        slot[static_cast<std::size_t>(
            net.root_[static_cast<std::size_t>(v)])] = static_cast<int>(i);
      }
    };
    touch(op.in0, last);
    touch(op.in1, last);
    touch(op.out, def);
  }
  PIT_CHECK(def[static_cast<std::size_t>(out_root)] >= 0,
            "NetBuilder: output is not produced by any op");

  // Row layouts. Every value a packed conv reads is planned padded:
  // (k-1)*dilation zeroed lead floats per channel row (the implicit
  // causal padding, materialized once) plus a register tile of tail
  // slack, so the kernel never does per-tap bounds work.
  const std::size_t nv = net.values_.size();
  net.lead_.assign(nv, 0);
  net.slack_.assign(nv, 0);
  for (const detail::Op& op : net.ops_) {
    if (op.kind == detail::OpKind::kConv && op.packed) {
      const auto r =
          static_cast<std::size_t>(net.root_[static_cast<std::size_t>(op.in0)]);
      net.lead_[r] = std::max(net.lead_[r], (op.k - 1) * op.dilation);
      net.slack_[r] = nn::kernels::kPackTimeTile;
    }
  }
  // The output lives in the returned dense tensor; padding it is not
  // supported (no consumer could need it anyway — it feeds no op).
  PIT_CHECK(net.lead_[static_cast<std::size_t>(out_root)] == 0 &&
                net.slack_[static_cast<std::size_t>(out_root)] == 0,
            "NetBuilder: the network output cannot feed a packed conv");
  // Flatten aliases reinterpret rows as one contiguous block: only legal
  // over dense storage.
  for (std::size_t v = 0; v < nv; ++v) {
    if (net.values_[v].alias_of >= 0) {
      const auto r = static_cast<std::size_t>(net.root_[v]);
      PIT_CHECK(net.lead_[r] == 0 && net.slack_[r] == 0,
                "NetBuilder: flatten of a conv-consumed (padded) value is "
                "not supported");
    }
  }
  // Ops that can only write dense rows must not produce padded values,
  // and ops that can only read dense rows must not consume them — catch
  // both at compile time rather than on the first forward().
  for (const detail::Op& op : net.ops_) {
    const bool dense_only =
        op.kind == detail::OpKind::kLinear ||
        (op.kind == detail::OpKind::kConv && !op.packed);
    if (dense_only) {
      const auto out_r =
          static_cast<std::size_t>(net.root_[static_cast<std::size_t>(op.out)]);
      PIT_CHECK(net.lead_[out_r] == 0 && net.slack_[out_r] == 0,
                "NetBuilder: a strided conv / linear cannot feed a packed "
                "conv directly");
      const auto in_r =
          static_cast<std::size_t>(net.root_[static_cast<std::size_t>(op.in0)]);
      PIT_CHECK(net.lead_[in_r] == 0 && net.slack_[in_r] == 0,
                "NetBuilder: a strided conv / linear cannot read a value "
                "that also feeds a packed conv");
    }
  }
  net.stride_.assign(nv, 0);
  for (std::size_t v = 0; v < nv; ++v) {
    net.stride_[v] = net.lead_[v] + net.values_[v].steps + net.slack_[v];
  }

  std::vector<ArenaRequest> requests;
  std::vector<ValueId> request_root;
  for (std::size_t v = 0; v < nv; ++v) {
    const auto vid = static_cast<ValueId>(v);
    if (net.root_[v] != vid || vid == in_root || vid == out_root ||
        def[v] < 0) {
      continue;  // alias, external buffer, or never produced
    }
    requests.push_back({net.values_[v].channels * net.stride_[v], def[v],
                        std::max(last[v], def[v])});
    request_root.push_back(vid);
  }
  // A padded input cannot alias the caller's dense tensor: plan a staging
  // value the forward pass copies (and zero-pads) the input into.
  const auto in_idx = static_cast<std::size_t>(in_root);
  if (net.lead_[in_idx] > 0 || net.slack_[in_idx] > 0) {
    const detail::Value in_value = net.values_[in_idx];  // copy: push_back
    net.input_stage_ = static_cast<ValueId>(nv);
    net.values_.push_back({in_value.channels, in_value.steps, -1});
    net.root_.push_back(net.input_stage_);
    net.lead_.push_back(net.lead_[in_idx]);
    net.slack_.push_back(net.slack_[in_idx]);
    net.stride_.push_back(net.stride_[in_idx]);
    requests.push_back(
        {in_value.channels * net.stride_[in_idx], 0,
         std::max(last[in_idx], 0)});
    request_root.push_back(net.input_stage_);
  }
  const ArenaPlan plan = plan_arena(requests);
  net.offsets_.assign(net.values_.size(), -1);
  for (std::size_t r = 0; r < request_root.size(); ++r) {
    net.offsets_[static_cast<std::size_t>(request_root[r])] = plan.offsets[r];
  }
  net.arena_per_sample_ = plan.total;

  // Streaming layout: legal when every op preserves the time axis one step
  // at a time — stride-1 convs (their packed weights double as the
  // per-step layout) and elementwise adds.
  net.streamable_ = true;
  for (const detail::Op& op : net.ops_) {
    const bool ok =
        (op.kind == detail::OpKind::kConv && op.stride == 1 && op.packed) ||
        op.kind == detail::OpKind::kAdd;
    if (!ok) {
      net.streamable_ = false;
      break;
    }
  }
  if (net.streamable_) {
    net.ring_off_.assign(net.ops_.size(), -1);
    for (std::size_t i = 0; i < net.ops_.size(); ++i) {
      const detail::Op& op = net.ops_[i];
      if (op.kind == detail::OpKind::kConv) {
        net.ring_off_[i] = net.ring_floats_;
        net.ring_floats_ += op.c_in * detail::ring_span(op);
      }
    }
    net.val_off_.assign(net.values_.size(), -1);
    for (std::size_t v = 0; v < net.values_.size(); ++v) {
      if (net.root_[v] == static_cast<ValueId>(v)) {
        net.val_off_[v] = net.val_floats_;
        net.val_floats_ += net.values_[v].channels;
      }
    }
  }

  // Kernel binding: resolve every op to concrete registry kernels, once.
  // The executors only ever call these pointers — there is no backend
  // resolution, env lookup, or signature matching on the hot path.
  const auto& reg = nn::kernels::Registry::instance();
  for (detail::Op& op : net.ops_) {
    switch (op.kind) {
      case detail::OpKind::kConv:
        if (op.packed) {
          const nn::kernels::ConvSig sig{op.k, op.c_in, op.c_out};
          const auto conv = reg.conv_packed_f32(sig);
          op.bind.conv = conv.fn;
          op.bind.meta = conv.meta;
          const auto step = reg.conv_step_f32(sig);
          op.bind.step = step.fn;
          op.bind.step_meta = step.meta;
        } else {
          // Strided conv: the historical scalar-vs-blocked resolution
          // (override, env, MAC heuristic) runs here, once, for the op's
          // per-sample geometry.
          nn::kernels::ConvDims dims{};
          dims.n = 1;
          dims.c_in = op.c_in;
          dims.c_out = op.c_out;
          dims.k = op.k;
          dims.t_in = op.t_in;
          dims.t_out = op.t_out;
          dims.dilation = op.dilation;
          dims.stride = op.stride;
          const auto train = reg.conv_train_f32(dims);
          op.bind.conv_train = train.fn;
          op.bind.meta = train.meta;
        }
        break;
      case detail::OpKind::kLinear: {
        const auto lin = reg.linear_f32();
        op.bind.linear = lin.fn;
        op.bind.meta = lin.meta;
        break;
      }
      case detail::OpKind::kAvgPool:
      case detail::OpKind::kAdd:
        // Executed by loops inside the executor itself.
        op.bind.meta = &nn::kernels::Registry::inline_meta();
        break;
    }
  }

  // Prove the planned layouts and bindings before anything can execute
  // them — a plan that compiles is a plan whose memory model verified.
  analysis::verify_or_throw(net, "NetBuilder::compile");
  return net;
}

// ---- CompiledPlan introspection ------------------------------------------

index_t CompiledPlan::input_channels() const {
  return values_[static_cast<std::size_t>(input_)].channels;
}

index_t CompiledPlan::input_steps() const {
  return values_[static_cast<std::size_t>(input_)].steps;
}

index_t CompiledPlan::output_channels() const {
  return values_[static_cast<std::size_t>(output_)].channels;
}

index_t CompiledPlan::output_steps() const {
  return values_[static_cast<std::size_t>(output_)].steps;
}

double CompiledPlan::quant_error_bound() const {
  PIT_CHECK(quantized_, "quant_error_bound: plan is not quantized");
  return q_error_bound_;
}

double CompiledPlan::quant_error_estimate() const {
  PIT_CHECK(quantized_, "quant_error_estimate: plan is not quantized");
  return q_error_estimate_;
}

index_t CompiledPlan::OpInfo::macs() const {
  switch (kind) {
    case detail::OpKind::kConv:
      return t_out * c_out * c_in * k;
    case detail::OpKind::kLinear:
      return c_in * c_out;
    case detail::OpKind::kAvgPool:
      return t_out * c_out * k;
    case detail::OpKind::kAdd:
      break;
  }
  return 0;
}

std::vector<CompiledPlan::OpInfo> CompiledPlan::op_infos() const {
  std::vector<OpInfo> infos;
  infos.reserve(ops_.size());
  for (const detail::Op& op : ops_) {
    OpInfo info;
    info.kind = op.kind;
    info.c_in = op.c_in;
    info.c_out = op.c_out;
    // Linear / add ops record no taps; normalize to the documented k = 1.
    info.k = std::max<index_t>(op.k, 1);
    info.dilation = op.dilation;
    info.stride = op.stride;
    info.t_in = op.t_in;
    info.t_out = op.t_out;
    info.relu = op.relu;
    infos.push_back(info);
  }
  return infos;
}

index_t CompiledPlan::activation_floats_per_sample() const {
  // Sum of the planned (arena-backed) buffer sizes, padding included —
  // what the arena would need without liveness reuse.
  index_t total = 0;
  for (std::size_t v = 0; v < values_.size(); ++v) {
    if (root_[v] == static_cast<ValueId>(v) && offsets_[v] >= 0) {
      total += values_[v].channels * stride_[v];
    }
  }
  return total;
}

namespace {

void print_op_head(std::ostringstream& os, const detail::Op& op) {
  switch (op.kind) {
    case detail::OpKind::kConv:
      os << "conv " << op.c_in << "->" << op.c_out << " k" << op.k << " d"
         << op.dilation << " s" << op.stride;
      break;
    case detail::OpKind::kLinear:
      os << "linear " << op.c_in << "->" << op.c_out;
      break;
    case detail::OpKind::kAvgPool:
      os << "avg_pool k" << op.k << " s" << op.stride;
      break;
    case detail::OpKind::kAdd:
      os << "add";
      break;
  }
  os << " t" << op.t_in << "->" << op.t_out;
  if (op.relu) {
    os << " +relu";
  }
}

void print_kernel(std::ostringstream& os, const char* tag,
                  const nn::kernels::KernelMeta* m) {
  os << ' ' << tag << '=';
  if (m == nullptr) {
    os << "unbound";
    return;
  }
  os << m->isa << '/' << m->variant << ' '
     << (m->specialized ? "specialized" : "generic") << " key=" << m->op;
}

}  // namespace

std::string CompiledPlan::summary() const {
  std::ostringstream os;
  os << "CompiledPlan: " << ops_.size() << " ops, "
     << param_floats() << " packed param floats, arena "
     << arena_per_sample_ << " floats/sample (unplanned: "
     << activation_floats_per_sample() << ")"
     << (streamable_ ? ", streamable" : "") << "\n";
  if (quantized_) {
    os << "  int8 program: " << quant_weight_bytes()
       << " packed weight bytes, "
       << q_arena_bytes_ << " arena bytes/sample, output error bound "
       << q_error_bound_ << " (rms estimate " << q_error_estimate_ << ")\n";
  }
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const detail::Op& op = ops_[i];
    os << "  #" << i << " ";
    print_op_head(os, op);
    const ValueId r = root_[static_cast<std::size_t>(op.out)];
    const index_t off = offsets_[static_cast<std::size_t>(r)];
    if (off >= 0) {
      os << " @" << off;
    } else {
      os << " @out";
    }
    os << "\n";
  }
  return os.str();
}

std::string CompiledPlan::describe() const {
  std::ostringstream os;
  os << "CompiledPlan bindings (" << (quantized_ ? "int8" : "fp32")
     << " program):\n";
  if (quantized_ && qstage_meta_ != nullptr) {
    os << "  input stage";
    print_kernel(os, "kernel", qstage_meta_);
    os << "\n";
  }
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const detail::Op& op = ops_[i];
    os << "  #" << i << " ";
    print_op_head(os, op);
    os << " |";
    // Quantized plans execute the int8 lowering — report what actually
    // runs; the fp32 bindings still exist but only serve reference runs.
    const nn::kernels::KernelMeta* meta =
        quantized_ ? qops_[i].bind.meta : op.bind.meta;
    const nn::kernels::KernelMeta* step_meta =
        quantized_ ? qops_[i].bind.step_meta : op.bind.step_meta;
    print_kernel(os, "kernel", meta);
    if (streamable_ && op.kind == detail::OpKind::kConv) {
      print_kernel(os, "step", step_meta);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace pit::runtime
