#include "runtime/arena.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>
#include <tuple>

#include "tensor/error.hpp"

namespace pit::runtime {

namespace {

struct FreeBlock {
  index_t offset = 0;
  index_t size = 0;
};

/// Inserts [offset, offset+size) into the offset-sorted free list,
/// coalescing with adjacent blocks.
void release_block(std::vector<FreeBlock>& free_list, index_t offset,
                   index_t size) {
  auto it = std::lower_bound(
      free_list.begin(), free_list.end(), offset,
      [](const FreeBlock& b, index_t off) { return b.offset < off; });
  it = free_list.insert(it, {offset, size});
  // Merge with the successor first so `it` stays valid.
  const auto next = it + 1;
  if (next != free_list.end() && it->offset + it->size == next->offset) {
    it->size += next->size;
    free_list.erase(next);
  }
  if (it != free_list.begin()) {
    const auto prev = it - 1;
    if (prev->offset + prev->size == it->offset) {
      prev->size += it->size;
      free_list.erase(it);
    }
  }
}

}  // namespace

ArenaPlan plan_arena(const std::vector<ArenaRequest>& requests) {
  ArenaPlan plan;
  plan.offsets.assign(requests.size(), 0);

  std::vector<std::size_t> order(requests.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return requests[a].start < requests[b].start;
                   });

  std::vector<FreeBlock> free_list;
  // Live allocations ordered by expiry: (end, offset, size).
  using Live = std::tuple<int, index_t, index_t>;
  std::priority_queue<Live, std::vector<Live>, std::greater<Live>> live;

  for (const std::size_t idx : order) {
    const ArenaRequest& r = requests[idx];
    PIT_CHECK(r.size >= 1 && r.end >= r.start,
              "plan_arena: bad request size=" << r.size << " start=" << r.start
                                              << " end=" << r.end);
    while (!live.empty() && std::get<0>(live.top()) < r.start) {
      release_block(free_list, std::get<1>(live.top()),
                    std::get<2>(live.top()));
      live.pop();
    }
    // Best fit: the smallest free block that holds the request; fresh
    // arena space only when nothing fits.
    auto best = free_list.end();
    for (auto it = free_list.begin(); it != free_list.end(); ++it) {
      if (it->size >= r.size && (best == free_list.end() ||
                                 it->size < best->size)) {
        best = it;
      }
    }
    index_t offset = 0;
    if (best != free_list.end()) {
      offset = best->offset;
      best->offset += r.size;
      best->size -= r.size;
      if (best->size == 0) {
        free_list.erase(best);
      }
    } else {
      offset = plan.total;
      plan.total += r.size;
    }
    plan.offsets[idx] = offset;
    live.emplace(r.end, offset, r.size);
  }
  check_arena_plan(requests, plan);
  return plan;
}

void check_arena_plan(const std::vector<ArenaRequest>& requests,
                      const ArenaPlan& plan) {
  PIT_CHECK(plan.offsets.size() == requests.size(),
            "check_arena_plan: " << plan.offsets.size() << " offsets for "
                                 << requests.size() << " requests");
  // Time-ordered event sweep: releases at end+1 before grants at the same
  // tick (inclusive lifetimes — [a,b] and [b+1,c] may share memory). The
  // active set is offset-ordered, so a grant only has to compare against
  // its two neighbors to detect any byte overlap.
  struct Event {
    int time = 0;
    bool grant = false;  // releases sort before grants at one tick
    std::size_t idx = 0;
  };
  std::vector<Event> events;
  events.reserve(requests.size() * 2);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    PIT_CHECK(plan.offsets[i] >= 0 &&
                  plan.offsets[i] + requests[i].size <= plan.total,
              "check_arena_plan: request " << i << " at offset "
                                           << plan.offsets[i] << " size "
                                           << requests[i].size
                                           << " exceeds arena total "
                                           << plan.total);
    events.push_back({requests[i].start, true, i});
    events.push_back({requests[i].end + 1, false, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.time != b.time ? a.time < b.time : a.grant < b.grant;
  });
  std::map<index_t, std::size_t> active;  // offset -> request index
  for (const Event& e : events) {
    if (!e.grant) {
      active.erase(plan.offsets[e.idx]);
      continue;
    }
    const index_t lo = plan.offsets[e.idx];
    const index_t hi = lo + requests[e.idx].size;
    const auto [it, inserted] = active.emplace(lo, e.idx);
    const auto clash = [&](std::size_t other) {
      PIT_CHECK(false, "check_arena_plan: live requests "
                           << e.idx << " [" << lo << ", " << hi << ") and "
                           << other << " [" << plan.offsets[other] << ", "
                           << plan.offsets[other] + requests[other].size
                           << ") overlap over ops ["
                           << std::max(requests[e.idx].start,
                                       requests[other].start)
                           << ", "
                           << std::min(requests[e.idx].end,
                                       requests[other].end)
                           << "]");
    };
    if (!inserted) {
      clash(it->second);
    }
    if (it != active.begin()) {
      const auto prev = std::prev(it);
      if (prev->first + requests[prev->second].size > lo) {
        clash(prev->second);
      }
    }
    if (const auto next = std::next(it); next != active.end() &&
                                         hi > next->first) {
      clash(next->second);
    }
  }
}

}  // namespace pit::runtime
