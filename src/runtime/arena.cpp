#include "runtime/arena.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <tuple>

#include "tensor/error.hpp"

namespace pit::runtime {

namespace {

struct FreeBlock {
  index_t offset = 0;
  index_t size = 0;
};

/// Inserts [offset, offset+size) into the offset-sorted free list,
/// coalescing with adjacent blocks.
void release_block(std::vector<FreeBlock>& free_list, index_t offset,
                   index_t size) {
  auto it = std::lower_bound(
      free_list.begin(), free_list.end(), offset,
      [](const FreeBlock& b, index_t off) { return b.offset < off; });
  it = free_list.insert(it, {offset, size});
  // Merge with the successor first so `it` stays valid.
  const auto next = it + 1;
  if (next != free_list.end() && it->offset + it->size == next->offset) {
    it->size += next->size;
    free_list.erase(next);
  }
  if (it != free_list.begin()) {
    const auto prev = it - 1;
    if (prev->offset + prev->size == it->offset) {
      prev->size += it->size;
      free_list.erase(it);
    }
  }
}

}  // namespace

ArenaPlan plan_arena(const std::vector<ArenaRequest>& requests) {
  ArenaPlan plan;
  plan.offsets.assign(requests.size(), 0);

  std::vector<std::size_t> order(requests.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return requests[a].start < requests[b].start;
                   });

  std::vector<FreeBlock> free_list;
  // Live allocations ordered by expiry: (end, offset, size).
  using Live = std::tuple<int, index_t, index_t>;
  std::priority_queue<Live, std::vector<Live>, std::greater<Live>> live;

  for (const std::size_t idx : order) {
    const ArenaRequest& r = requests[idx];
    PIT_CHECK(r.size >= 1 && r.end >= r.start,
              "plan_arena: bad request size=" << r.size << " start=" << r.start
                                              << " end=" << r.end);
    while (!live.empty() && std::get<0>(live.top()) < r.start) {
      release_block(free_list, std::get<1>(live.top()),
                    std::get<2>(live.top()));
      live.pop();
    }
    // Best fit: the smallest free block that holds the request; fresh
    // arena space only when nothing fits.
    auto best = free_list.end();
    for (auto it = free_list.begin(); it != free_list.end(); ++it) {
      if (it->size >= r.size && (best == free_list.end() ||
                                 it->size < best->size)) {
        best = it;
      }
    }
    index_t offset = 0;
    if (best != free_list.end()) {
      offset = best->offset;
      best->offset += r.size;
      best->size -= r.size;
      if (best->size == 0) {
        free_list.erase(best);
      }
    } else {
      offset = plan.total;
      plan.total += r.size;
    }
    plan.offsets[idx] = offset;
    live.emplace(r.end, offset, r.size);
  }
  return plan;
}

}  // namespace pit::runtime
