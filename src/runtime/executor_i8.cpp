// Batched int8 execution of a quantized CompiledPlan. Every kernel-backed
// op runs through the pointer bound at lowering time (detail::QuantBinding)
// — this TU performs no variant-table walks and never consults the
// registry.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "nn/kernels/registry.hpp"
#include "runtime/compiled_net.hpp"
#include "runtime/executor_detail.hpp"
#include "runtime/hardening.hpp"
#include "tensor/error.hpp"

namespace pit::runtime {

namespace {
using detail::clamp_u8;
using detail::kQParallelMinBytes;
using detail::QSpan;
using nn::kernels::kQuantCiGroup;
using nn::kernels::quant_groups;
}  // namespace

Tensor CompiledPlan::forward_quantized(const Tensor& input,
                                       ExecutionContext& ctx,
                                       const ValueHook* hook) const {
  PIT_CHECK(quantized_, "forward_quantized: plan has no int8 program");
  const index_t c = input_channels();
  const index_t t = input_steps();
  const bool flat_ok = t == 1 && input.rank() == 2 && input.dim(1) == c;
  PIT_CHECK(flat_ok || (input.rank() == 3 && input.dim(1) == c &&
                        input.dim(2) == t),
            "CompiledPlan: expected (N, " << c << ", " << t << "), got "
                                          << input.shape().to_string());
  const index_t n = input.dim(0);
  const auto needed = static_cast<std::size_t>(q_arena_bytes_ * n);
  // Dynamic enforcement (runtime/hardening.hpp). u8 rows carry no tail
  // slack, so kPoison guards the DEAD regions between planned blocks and
  // kCanary guards a pattern-filled pad past the arena's planned end.
  const hardening::Mode hmode = hardening::mode();
  const std::size_t pad =
      static_cast<std::size_t>(hardening::kArenaTailPadFloats) *
      sizeof(float);
  const std::size_t reserve =
      hmode == hardening::Mode::kCanary ? needed + pad : needed;
  if (ctx.qarena_.size() < reserve) {
    ctx.qarena_.resize(reserve);
  }
  std::uint8_t* arena = ctx.qarena_.data();
  hardening::UnpoisonOnExit unpoison_guard(arena, needed);
  if (hmode == hardening::Mode::kPoison) {
    hardening::poison(arena, needed);
  } else if (hmode == hardening::Mode::kCanary) {
    hardening::fill_canary(arena + needed, pad);
  }
  // Opens a value's full planned byte region (u8 reads and writes both
  // stay inside it — the verifier proved the lead covers the look-back).
  const auto open_region = [&](ValueId v) {
    ValueId r = root_[static_cast<std::size_t>(v)];
    if (r == root_[static_cast<std::size_t>(input_)]) {
      r = q_stage_;
    }
    const auto ri = static_cast<std::size_t>(r);
    if (q_off_[ri] < 0) {
      return;
    }
    hardening::unpoison(
        arena + q_off_[ri] * n,
        static_cast<std::size_t>(n *
                                 quant_groups(values_[ri].channels) *
                                 kQuantCiGroup * q_stride_[ri]));
  };

  const detail::Value& out_value =
      values_[static_cast<std::size_t>(output_)];
  Tensor out = out_value.steps == 1
                   ? Tensor::empty(Shape{n, out_value.channels})
                   : Tensor::empty(
                         Shape{n, out_value.channels, out_value.steps});
  float* out_data = out.data();

  const ValueId in_root = root_[static_cast<std::size_t>(input_)];
  const ValueId out_root = root_[static_cast<std::size_t>(output_)];

  // Resolves a value to its byte-arena buffer (the input resolves to its
  // staged u8 copy). Only valid for arena-backed values — the output is
  // written as floats by its producing op.
  const auto qspan = [&](ValueId v) -> QSpan {
    ValueId r = root_[static_cast<std::size_t>(v)];
    if (r == in_root) {
      r = q_stage_;
    }
    const auto ri = static_cast<std::size_t>(r);
    PIT_CHECK(q_off_[ri] >= 0, "forward_quantized: value " << v
                                                           << " not planned");
    return {arena + q_off_[ri] * n + kQuantCiGroup * q_lead_[ri],
            q_stride_[ri]};
  };

  // Stage the input: float (N, C, T) -> u8 channel-group rows, with the
  // causal lead filled with the zero-point byte (real 0.0).
  {
    const auto si = static_cast<std::size_t>(q_stage_);
    const quant::QuantParams& qp = qvalue_[si];
    open_region(q_stage_);
    qstage_fn_(input.data(), arena + q_off_[si] * n, n, c, t, q_lead_[si],
               q_stride_[si], 1.0F / qp.scale, qp.zero_point);
  }

  // Refills the zero-point lead of a freshly produced value (arena reuse
  // may have clobbered it; its conv consumer reads it as causal padding).
  const auto refill_lead = [&](ValueId v) {
    const auto r = static_cast<std::size_t>(root_[static_cast<std::size_t>(v)]);
    if (q_off_[r] < 0 || q_lead_[r] == 0) {
      return;
    }
    const index_t rows = n * quant_groups(values_[r].channels);
    const auto zp_byte = static_cast<std::uint8_t>(qvalue_[r].zero_point);
    std::uint8_t* base = arena + q_off_[r] * n;
    for (index_t row = 0; row < rows; ++row) {
      std::memset(base + row * kQuantCiGroup * q_stride_[r], zp_byte,
                  static_cast<std::size_t>(kQuantCiGroup * q_lead_[r]));
    }
  };

  // Dequantizes a produced value into a dense float scratch for the hook.
  std::vector<float> scratch;
  const auto call_hook = [&](ValueId v) {
    if (hook == nullptr) {
      return;
    }
    const detail::Value& val = values_[static_cast<std::size_t>(v)];
    const auto r = static_cast<std::size_t>(root_[static_cast<std::size_t>(v)]);
    if (r == static_cast<std::size_t>(out_root)) {
      (*hook)(v, out_data, n * val.channels, val.steps, val.steps);
      return;
    }
    const QSpan s = qspan(v);
    const quant::QuantParams& qp = qvalue_[r];
    scratch.assign(static_cast<std::size_t>(n * val.numel()), 0.0F);
    const index_t groups = quant_groups(val.channels);
    for (index_t ni = 0; ni < n; ++ni) {
      const std::uint8_t* sample =
          s.p + ni * groups * kQuantCiGroup * s.stride;
      for (index_t ch = 0; ch < val.channels; ++ch) {
        const std::uint8_t* grow =
            sample + (ch / kQuantCiGroup) * kQuantCiGroup * s.stride;
        float* drow =
            scratch.data() + (ni * val.channels + ch) * val.steps;
        for (index_t ts = 0; ts < val.steps; ++ts) {
          drow[ts] = qp.dequantize(
              grow[kQuantCiGroup * ts + ch % kQuantCiGroup]);
        }
      }
    }
    (*hook)(v, scratch.data(), n * val.channels, val.steps, val.steps);
  };

  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const detail::Op& op = ops_[i];
    const detail::QuantOp& qop = qops_[i];
    if (hmode == hardening::Mode::kPoison) {
      open_region(op.in0);
      if (op.in1 >= 0) {
        open_region(op.in1);
      }
      if (!qop.out_float) {
        open_region(op.out);
      }
    }
    switch (op.kind) {
      case detail::OpKind::kConv: {
        const float* m = qconsts_.data() + qop.m_off;
        const float* b = qconsts_.data() + qop.b_off;
        nn::kernels::ConvDims dims{};
        dims.n = n;
        dims.c_in = op.c_in;
        dims.c_out = op.c_out;
        dims.k = op.k;
        dims.t_in = op.t_in;
        dims.t_out = op.t_out;
        dims.dilation = op.dilation;
        dims.stride = 1;
        const QSpan x = qspan(op.in0);
        if (qop.out_float) {
          qop.bind.conv(x.p, qweights_.data(qop.w_blk), m, b, nullptr,
                        out_data, dims, x.stride, op.t_out, op.relu,
                        qop.out_lo);
        } else {
          const QSpan y = qspan(op.out);
          qop.bind.conv(x.p, qweights_.data(qop.w_blk), m, b, y.p,
                        nullptr, dims, x.stride, y.stride, op.relu,
                        qop.out_lo);
        }
        break;
      }
      case detail::OpKind::kLinear: {
        const float* m = qconsts_.data() + qop.m_off;
        const float* b = qconsts_.data() + qop.b_off;
        const auto rv = static_cast<std::size_t>(
            root_[static_cast<std::size_t>(op.in0)]);
        const index_t f4 = quant_groups(values_[rv].channels) *
                           kQuantCiGroup * values_[rv].steps;
        // The bound kernel is the k = 1, t = 1 conv over one contiguous
        // run of f4 feature quads per sample.
        nn::kernels::ConvDims dims{};
        dims.n = n;
        dims.c_in = f4;
        dims.c_out = op.c_out;
        dims.k = 1;
        dims.t_in = 1;
        dims.t_out = 1;
        dims.dilation = 1;
        dims.stride = 1;
        const QSpan x = qspan(op.in0);
        if (qop.out_float) {
          qop.bind.conv(x.p, qweights_.data(qop.w_blk), m, b, nullptr,
                        out_data, dims, 1, 1, op.relu, qop.out_lo);
        } else {
          const QSpan y = qspan(op.out);
          qop.bind.conv(x.p, qweights_.data(qop.w_blk), m, b, y.p,
                        nullptr, dims, 1, 1, op.relu, qop.out_lo);
        }
        break;
      }
      case detail::OpKind::kAvgPool: {
        const QSpan x = qspan(op.in0);
        const index_t groups = quant_groups(op.c_out);
        const index_t rows = n * groups;
        const float a_mul = qop.a_mul;
        const float c_add = qop.c_add;
        const bool out_float = qop.out_float;
        const QSpan y = out_float ? QSpan{} : qspan(op.out);
#pragma omp parallel for schedule(static) \
    if (rows * op.t_out * kQuantCiGroup >= kQParallelMinBytes)
        for (index_t r = 0; r < rows; ++r) {
          const std::uint8_t* xrow = x.p + r * kQuantCiGroup * x.stride;
          for (index_t to = 0; to < op.t_out; ++to) {
            for (index_t j = 0; j < kQuantCiGroup; ++j) {
              std::int32_t sum = 0;
              for (index_t w = 0; w < op.k; ++w) {
                sum += xrow[kQuantCiGroup * (to * op.stride + w) + j];
              }
              const float v = a_mul * static_cast<float>(sum) + c_add;
              if (out_float) {
                const index_t ni = r / groups;
                const index_t ch = (r % groups) * kQuantCiGroup + j;
                if (ch < op.c_out) {
                  out_data[(ni * op.c_out + ch) * op.t_out + to] = v;
                }
              } else {
                y.p[r * kQuantCiGroup * y.stride + kQuantCiGroup * to + j] =
                    static_cast<std::uint8_t>(
                        clamp_u8(std::lrintf(v), qop.out_lo));
              }
            }
          }
        }
        break;
      }
      case detail::OpKind::kAdd: {
        const QSpan a = qspan(op.in0);
        const QSpan bb = qspan(op.in1);
        const index_t groups = quant_groups(op.c_out);
        const index_t rows = n * groups;
        const index_t steps = op.t_out;
        if (!qop.out_float) {
          const QSpan y = qspan(op.out);
          qop.bind.add(a.p, bb.p, y.p, rows, steps, a.stride, bb.stride,
                       y.stride, qop.a_mul, qop.b_mul, qop.c_add,
                       qop.out_lo);
          break;
        }
        // Dequantizing store (this add produces the plan output): rare,
        // so a plain loop over the dense float rows suffices.
        const float a_mul = qop.a_mul;
        const float b_mul = qop.b_mul;
        const float c_add = qop.c_add;
        const bool relu = op.relu;
#pragma omp parallel for schedule(static) \
    if (rows * steps * kQuantCiGroup >= kQParallelMinBytes)
        for (index_t r = 0; r < rows; ++r) {
          const std::uint8_t* arow = a.p + r * kQuantCiGroup * a.stride;
          const std::uint8_t* brow = bb.p + r * kQuantCiGroup * bb.stride;
          for (index_t ts = 0; ts < steps; ++ts) {
            for (index_t j = 0; j < kQuantCiGroup; ++j) {
              const index_t off = kQuantCiGroup * ts + j;
              float v = a_mul * static_cast<float>(arow[off]) +
                        b_mul * static_cast<float>(brow[off]) + c_add;
              if (relu && v < 0.0F) {
                v = 0.0F;
              }
              const index_t ni = r / groups;
              const index_t ch = (r % groups) * kQuantCiGroup + j;
              if (ch < op.c_out) {
                out_data[(ni * op.c_out + ch) * steps + ts] = v;
              }
            }
          }
        }
        break;
      }
    }
    if (!qop.out_float) {
      refill_lead(op.out);
    }
    call_hook(op.out);
  }
  if (hmode == hardening::Mode::kCanary &&
      !hardening::check_canary(arena + needed, pad)) {
    hardening::raise_canary_failure(
        "forward_quantized", -1, -1, static_cast<long long>(needed),
        static_cast<long long>(needed + pad));
  }
  return out;
}

}  // namespace pit::runtime
