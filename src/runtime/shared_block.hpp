// Content-hash deduplicated weight storage for compiled plans.
//
// A CompiledPlan used to own its packed fp32 params and s8 qweights as flat
// private vectors. Multi-tenant serving (runtime/plan_registry.hpp) wants N
// versions of the same backbone resident at once, where consecutive versions
// typically differ in one or two layers — so the unit of ownership moves from
// "one flat pool per plan" to "one refcounted block per op", and a WeightPool
// interns identical blocks across plans by content hash. A plan's BlockTable
// maps the op's block handle (detail::Op::w_blk/b_blk, detail::QuantOp::w_blk)
// to a shared immutable vector; two plans whose layer weights are bytewise
// equal share the same physical block, and the block dies with its last plan.
//
// Thread-safety: a BlockTable is immutable after compile (same contract as
// the rest of CompiledPlan). WeightPool::intern_* is internally synchronized
// and may be called from concurrent compiles.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "tensor/shape.hpp"

namespace pit::runtime {

/// One immutable, refcounted weight block. The pointed-to vector never
/// changes after interning; sharing is plain shared_ptr refcounting.
template <typename T>
using SharedBlock = std::shared_ptr<const std::vector<T>>;

/// FNV-1a 64-bit over a byte range — stable, dependency-free content hash.
/// Collisions are survivable (the pool confirms with size + memcmp before
/// sharing); the hash only routes lookups to a bucket.
inline std::uint64_t hash_bytes(const void* data, std::size_t bytes,
                                std::uint64_t seed = 1469598103934665603ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Dedup accounting a WeightPool keeps across all interns it has served.
struct WeightPoolStats {
  std::uint64_t lookups = 0;          // intern calls
  std::uint64_t hits = 0;             // calls answered with an existing block
  std::uint64_t bytes_requested = 0;  // sum of all interned block sizes
  std::uint64_t bytes_unique = 0;     // bytes of distinct blocks allocated

  /// Logical bytes over physical bytes; 1.0 when nothing was shared.
  double dedup_ratio() const {
    return bytes_unique == 0
               ? 1.0
               : static_cast<double>(bytes_requested) /
                     static_cast<double>(bytes_unique);
  }
};

/// Content-addressed intern table for weight blocks. Holds weak references
/// only: the pool never keeps a dead plan's weights alive, and an expired
/// entry is pruned on the next lookup that walks its bucket.
class WeightPool {
 public:
  SharedBlock<float> intern_f32(std::vector<float>&& block) {
    return intern(f32_, std::move(block));
  }

  SharedBlock<std::int8_t> intern_i8(std::vector<std::int8_t>&& block) {
    return intern(i8_, std::move(block));
  }

  WeightPoolStats stats() const {
    std::lock_guard<std::mutex> lock(pool_lock_);
    return stats_;
  }

 private:
  template <typename T>
  using Bucket = std::vector<std::weak_ptr<const std::vector<T>>>;

  template <typename T>
  SharedBlock<T> intern(std::unordered_map<std::uint64_t, Bucket<T>>& table,
                        std::vector<T>&& block) {
    const std::size_t bytes = block.size() * sizeof(T);
    const std::uint64_t key = hash_bytes(block.data(), bytes);
    std::lock_guard<std::mutex> lock(pool_lock_);
    stats_.lookups += 1;
    stats_.bytes_requested += bytes;
    Bucket<T>& bucket = table[key];
    for (std::size_t i = 0; i < bucket.size();) {
      if (SharedBlock<T> held = bucket[i].lock()) {
        if (held->size() == block.size() &&
            (bytes == 0 ||
             std::memcmp(held->data(), block.data(), bytes) == 0)) {
          stats_.hits += 1;
          return held;
        }
        ++i;
      } else {
        bucket[i] = bucket.back();  // prune the expired entry
        bucket.pop_back();
      }
    }
    auto fresh = std::make_shared<const std::vector<T>>(std::move(block));
    bucket.emplace_back(fresh);
    stats_.bytes_unique += bytes;
    return fresh;
  }

  mutable std::mutex pool_lock_;
  std::unordered_map<std::uint64_t, Bucket<float>> f32_;
  std::unordered_map<std::uint64_t, Bucket<std::int8_t>> i8_;
  WeightPoolStats stats_;
};

/// Ordered list of shared blocks owned by one plan. Ops address blocks by
/// the index `add()` returned; `data(blk)` is the hot-path accessor the
/// executors call (one indexed load + one pointer chase, no locking).
template <typename T>
class BlockTable {
 public:
  /// Appends a block, interning through `pool` when one is given. Returns
  /// the handle ops store in w_blk/b_blk.
  index_t add(std::vector<T>&& block, WeightPool* pool = nullptr) {
    SharedBlock<T> shared =
        pool != nullptr
            ? intern_via(*pool, std::move(block))
            : std::make_shared<const std::vector<T>>(std::move(block));
    blocks_.push_back(std::move(shared));
    return static_cast<index_t>(blocks_.size()) - 1;
  }

  /// Re-interns every block through `pool` — used at compile() time so
  /// blocks built incrementally during recording still deduplicate.
  void intern_all(WeightPool& pool) {
    for (SharedBlock<T>& blk : blocks_) {
      std::vector<T> copy = *blk;
      blk = intern_via(pool, std::move(copy));
    }
  }

  const T* data(index_t blk) const {
    return blocks_[static_cast<std::size_t>(blk)]->data();
  }

  index_t size(index_t blk) const {
    return static_cast<index_t>(
        blocks_[static_cast<std::size_t>(blk)]->size());
  }

  const SharedBlock<T>& block(index_t blk) const {
    return blocks_[static_cast<std::size_t>(blk)];
  }

  index_t count() const { return static_cast<index_t>(blocks_.size()); }

  /// Total logical elements across blocks (shared blocks counted once per
  /// reference — this is the per-plan logical footprint, not physical).
  std::size_t total_elems() const {
    std::size_t n = 0;
    for (const SharedBlock<T>& blk : blocks_) {
      n += blk->size();
    }
    return n;
  }

  /// Order-sensitive combined content hash — block order is part of the
  /// plan's identity, so [A,B] and [B,A] fingerprint differently.
  std::uint64_t content_hash() const {
    std::uint64_t h = 1469598103934665603ULL;
    for (const SharedBlock<T>& blk : blocks_) {
      const std::uint64_t size = blk->size();
      h = hash_bytes(&size, sizeof(size), h);
      h = hash_bytes(blk->data(), blk->size() * sizeof(T), h);
    }
    return h;
  }

 private:
  static SharedBlock<T> intern_via(WeightPool& pool, std::vector<T>&& block);

  std::vector<SharedBlock<T>> blocks_;
};

template <>
inline SharedBlock<float> BlockTable<float>::intern_via(
    WeightPool& pool, std::vector<float>&& block) {
  return pool.intern_f32(std::move(block));
}

template <>
inline SharedBlock<std::int8_t> BlockTable<std::int8_t>::intern_via(
    WeightPool& pool, std::vector<std::int8_t>&& block) {
  return pool.intern_i8(std::move(block));
}

}  // namespace pit::runtime
