// Model-specific compilers: TempoNet and ResTCN -> CompiledPlan.
//
// The searchable temporal convs of either model may be plain nn::Conv1d
// (an export_weights product, or a hand-tuned/dilated build) or PITConv1d
// straight out of the search with binarized gammas; both freeze to the
// same FrozenConv — the PIT layer is packed down to its surviving taps
// (core::exported_weight), which is exactly the collapse the paper sells.
//
// Plans are shape-specialized: the compiled plan serves any batch size but
// a fixed per-sample (C, T); compile again for a different input length.
// compile_plan() returns the shareable immutable plan for concurrent
// serving (one ExecutionContext per thread — see compiled_net.hpp);
// compile() wraps the same plan in the single-threaded CompiledNet facade.
#pragma once

#include <memory>

#include "models/restcn.hpp"
#include "models/temponet.hpp"
#include "runtime/compiled_net.hpp"

namespace pit::runtime {

/// Freezes any supported temporal-conv module: nn::Conv1d verbatim, or a
/// PITConv1d packed to the surviving taps of its current binarized
/// dilation. Throws for other module types.
FrozenConv freeze_temporal_conv(const nn::Module& conv);

/// Compiles a trained TempoNet into the frozen runtime plan: batch-norm
/// folded into each conv, ReLU fused, dropout dropped (eval semantics),
/// the FC head packed. Matches Module::forward in eval mode. A non-null
/// `pool` interns the packed weight blocks so identical layers dedup
/// across plans (see runtime/plan_registry.hpp).
std::shared_ptr<const CompiledPlan> compile_plan(const models::TempoNet& model,
                                                 WeightPool* pool = nullptr);

/// Compiles a trained ResTCN for inputs of `input_steps` time steps. The
/// resulting plan is streamable (all ops are stride-1 convs and adds).
std::shared_ptr<const CompiledPlan> compile_plan(const models::ResTCN& model,
                                                 index_t input_steps,
                                                 WeightPool* pool = nullptr);

/// Compiles TempoNet's temporal-conv backbone — the seven BN-folded,
/// ReLU-fused dilated convs, without the stride-2 pools and the FC head —
/// into a streamable plan over `input_steps`-step windows. This is the
/// paper's continuous-sensing deployment shape: a causal feature extractor
/// advanced one PPG/accelerometer tick at a time (StreamSession /
/// SessionManager); the pooled-and-flattened regression head stays on the
/// windowed forward() path.
std::shared_ptr<const CompiledPlan> compile_stream_backbone(
    const models::TempoNet& model, index_t input_steps,
    WeightPool* pool = nullptr);

/// Single-threaded facades over the plans above.
CompiledNet compile(const models::TempoNet& model);
CompiledNet compile(const models::ResTCN& model, index_t input_steps);

}  // namespace pit::runtime
