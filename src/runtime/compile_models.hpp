// Model-specific compilers: TempoNet and ResTCN -> CompiledNet.
//
// The searchable temporal convs of either model may be plain nn::Conv1d
// (an export_weights product, or a hand-tuned/dilated build) or PITConv1d
// straight out of the search with binarized gammas; both freeze to the
// same FrozenConv — the PIT layer is packed down to its surviving taps
// (core::exported_weight), which is exactly the collapse the paper sells.
//
// Plans are shape-specialized: the compiled net serves any batch size but
// a fixed per-sample (C, T); compile again for a different input length.
#pragma once

#include "models/restcn.hpp"
#include "models/temponet.hpp"
#include "runtime/compiled_net.hpp"

namespace pit::runtime {

/// Freezes any supported temporal-conv module: nn::Conv1d verbatim, or a
/// PITConv1d packed to the surviving taps of its current binarized
/// dilation. Throws for other module types.
FrozenConv freeze_temporal_conv(const nn::Module& conv);

/// Compiles a trained TempoNet into the frozen runtime plan: batch-norm
/// folded into each conv, ReLU fused, dropout dropped (eval semantics),
/// the FC head packed. Matches Module::forward in eval mode.
CompiledNet compile(const models::TempoNet& model);

/// Compiles a trained ResTCN for inputs of `input_steps` time steps.
CompiledNet compile(const models::ResTCN& model, index_t input_steps);

}  // namespace pit::runtime
