// Streaming fp32 single-step execution of a CompiledPlan. The per-conv MAC
// loop is the streaming-step kernel bound at plan-build time
// (detail::OpBinding::step) — this TU only manages the ring buffers and
// per-value vectors and never consults the registry.
#include <algorithm>

#include "nn/kernels/registry.hpp"
#include "runtime/compiled_net.hpp"
#include "runtime/executor_detail.hpp"
#include "runtime/hardening.hpp"
#include "tensor/error.hpp"

namespace pit::runtime {

void CompiledPlan::bind_stream(ExecutionContext& ctx) const {
  PIT_CHECK(streamable_,
            "CompiledPlan::step: plan is not streamable (it contains a "
            "pool, linear, or strided conv — run forward() on whole "
            "sequences instead)");
  if (ctx.stream_plan_ != this) {
    if (hardening::mode() != hardening::Mode::kOff) {
      // Dynamic ring-size enforcement: re-derive the exact streaming
      // layout from the op list before any step indexes into it. Each
      // conv keeps (k-1)*dilation+1 slots per input channel — a ring
      // sized any other way would make step() read or write out of its
      // span.
      index_t ring = 0;
      index_t vals = 0;
      for (const detail::Op& op : ops_) {
        if (op.kind == detail::OpKind::kConv) {
          ring += op.c_in * detail::ring_span(op);
        }
      }
      for (std::size_t v = 0; v < values_.size(); ++v) {
        if (root_[v] == static_cast<ValueId>(v)) {
          vals += values_[v].channels;
        }
      }
      PIT_CHECK(ring_floats_ == ring && val_floats_ == vals,
                "bind_stream: streaming layout holds "
                    << ring_floats_ << "/" << val_floats_
                    << " ring/value floats, ops need " << ring << "/"
                    << vals);
    }
    if (quantized_) {
      bind_stream_quantized(ctx);  // zero-point-filled u8 rings
    } else {
      ctx.stream_ring_.assign(static_cast<std::size_t>(ring_floats_), 0.0F);
      ctx.stream_vals_.assign(static_cast<std::size_t>(val_floats_), 0.0F);
    }
    ctx.stream_t_ = 0;
    ctx.stream_plan_ = this;
  }
}

void CompiledPlan::step(const float* input, float* output,
                        ExecutionContext& ctx) const {
  bind_stream(ctx);
  if (quantized_) {
    step_quantized(input, output, ctx);
    return;
  }
  float* rings = ctx.stream_ring_.data();
  float* vals = ctx.stream_vals_.data();
  const auto t = static_cast<index_t>(ctx.stream_t_);

  const auto vec = [&](ValueId v) -> float* {
    const auto r = static_cast<std::size_t>(root_[static_cast<std::size_t>(v)]);
    return vals + val_off_[r];
  };
  std::copy(input, input + input_channels(), vec(input_));

  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const detail::Op& op = ops_[i];
    float* y = vec(op.out);
    if (op.kind == detail::OpKind::kAdd) {
      const float* a = vec(op.in0);
      const float* b = vec(op.in1);
      for (index_t ch = 0; ch < op.c_out; ++ch) {
        const float s = a[ch] + b[ch];
        y[ch] = op.relu && s < 0.0F ? 0.0F : s;
      }
      continue;
    }
    // Conv: push the current input vector into this op's history ring,
    // then hand the ring to the bound single-step kernel, which dots
    // every tap against its dilated look-back slot. Slots the sequence
    // has not reached yet still hold their zero initialization — exactly
    // the implicit causal padding of the batched kernels.
    const float* x = vec(op.in0);
    const index_t span = detail::ring_span(op);
    const index_t pos = t % span;
    float* ring = rings + ring_off_[static_cast<std::size_t>(i)];
    for (index_t ci = 0; ci < op.c_in; ++ci) {
      ring[ci * span + pos] = x[ci];
    }
    op.bind.step(ring, params_.data(op.w_blk),
                 op.b_blk >= 0 ? params_.data(op.b_blk) : nullptr, y,
                 op.c_in, op.c_out, op.k, op.dilation, span, pos, op.relu);
  }
  const float* out_vec = vec(output_);
  std::copy(out_vec, out_vec + output_channels(), output);
  ++ctx.stream_t_;
}

Tensor CompiledPlan::step(const Tensor& input, ExecutionContext& ctx) const {
  PIT_CHECK(input.rank() == 1 && input.dim(0) == input_channels(),
            "CompiledPlan::step: expected a (" << input_channels()
                                               << ",) time-step vector, got "
                                               << input.shape().to_string());
  Tensor out = Tensor::empty(Shape{output_channels()});
  step(input.data(), out.data(), ctx);
  return out;
}

}  // namespace pit::runtime
