// Static activation-memory planner for the frozen inference runtime.
//
// Every intermediate activation of a compiled network is one request:
// `size` floats (per batch sample) that must stay resident over the
// inclusive op interval [start, end]. plan_arena() assigns each request an
// offset in a single arena such that requests with overlapping lifetimes
// never share memory while disjoint ones reuse it — the classic static
// memory planning scheme of inference runtimes (greedy best-fit over a
// coalescing free list, requests visited in definition order).
#pragma once

#include <vector>

#include "tensor/shape.hpp"

namespace pit::runtime {

struct ArenaRequest {
  index_t size = 0;  // floats per batch sample; must be >= 1
  int start = 0;     // index of the op that writes the buffer
  int end = 0;       // last op that reads it (inclusive); >= start
};

struct ArenaPlan {
  std::vector<index_t> offsets;  // float offset per request, request order
  index_t total = 0;             // arena floats per batch sample
};

/// Plans offsets for all requests. Requests are processed in increasing
/// `start` order (stable for ties); lifetimes are inclusive on both ends,
/// so two requests may share memory only if one's `end` is strictly
/// before the other's `start`.
ArenaPlan plan_arena(const std::vector<ArenaRequest>& requests);

/// Asserts that `plan` is a valid assignment for `requests`: every offset
/// in bounds and no two lifetime-overlapping requests sharing bytes.
/// O(n log n) interval sweep. plan_arena() runs this on everything it
/// returns — a planner bug throws pit::Error at plan time instead of
/// corrupting activations at run time; exposed so tests can probe it with
/// corrupted plans directly.
void check_arena_plan(const std::vector<ArenaRequest>& requests,
                      const ArenaPlan& plan);

}  // namespace pit::runtime
