// int8 lowering of compiled plans: calibrate -> lower -> execute.
//
// The paper's deployed artifact is an int8 TCN (PIT-searched networks are
// quantized and shipped to GAP8 through NN-Tool, Table III); this module
// is the executable counterpart of that flow for the compiled runtime.
// quantize_plan() takes a frozen fp32 CompiledPlan and:
//
//   calibrate — runs the fp32 plan over a calibration loader, feeding
//               every intermediate activation through one
//               quant::RangeObserver per value (min/max by default, an
//               optional percentile histogram for outlier-robust ranges),
//   lower     — quantizes each op: per-output-channel symmetric s8
//               weights (recovered from the already-BN-folded fp32
//               params), per-tensor affine u8 activations, and one float
//               multiplier/bias pair per output channel into which the
//               bias, the input zero-point correction, and the output
//               zero point are folded — the int8 kernels only compute
//               clamp(round(m * acc + b)); ReLU folds into the clamp,
//   plan      — every activation gets a byte-arena offset from the same
//               liveness planner as the fp32 arena (rows are
//               channel-group-interleaved u8 with materialized zero-point
//               causal padding),
//   execute   — CompiledPlan::forward() dispatches to the int8 program
//               automatically; ops feeding the plan output dequantize in
//               their store, so callers keep float tensors end to end.
//
// The returned plan is a superset of the input plan: the fp32 program is
// retained for reference runs (compare_quantized_layers) and all public
// geometry queries keep working. Execution obeys the same thread-safety
// contract — immutable plan, per-thread ExecutionContext (whose byte
// arena backs the quantized program) — so serve::InferenceServer serves a
// quantized plan unchanged. Streamable plans keep streaming after the
// lowering: step() runs the int8 program over per-conv u8 ring-buffer
// history (zero-point-filled leads as causal padding) and matches the
// batched int8 forward's columns bit-exactly.
//
// Error accounting: the lowering propagates two per-value figures —
//   - a worst-case bound (interval arithmetic over rounding, weight
//     quantization, and percentile clipping), guaranteed for inputs
//     inside the calibrated range but exponentially loose in depth, and
//   - an RMS estimate (independent-rounding model), the realistic error
//     magnitude.
// Both are exposed on the plan; the parity tests assert the hard bound
// and use a few-sigma multiple of the estimate as the tightness check.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/dataloader.hpp"
#include "quant/observer.hpp"
#include "runtime/compile_models.hpp"
#include "runtime/compiled_net.hpp"

namespace pit::runtime {

struct QuantizeOptions {
  /// Activation-range policy (min/max or percentile histogram).
  quant::ObserverConfig observer;
  /// Calibration batches consumed from the loader (clamped to its size).
  index_t max_calibration_batches = 32;
  /// Optional shared intern pool for the packed s8 weight blocks (weight
  /// quantization depends only on the fp32 weights, so identical layers
  /// dedup across plan versions). Must outlive the returned plan's use of
  /// newly-interned blocks' siblings; nullptr keeps blocks private.
  WeightPool* pool = nullptr;
};

/// Lowers a compiled fp32 plan to the int8 program, calibrating
/// activation ranges over `calib` (whose example inputs must match the
/// plan's (C, T) input). Deterministic: the same plan and calibration
/// stream produce bit-identical scales and outputs. Throws for plans with
/// strided convs (the TCN models compiled here have none).
std::shared_ptr<const CompiledPlan> quantize_plan(
    const CompiledPlan& plan, const data::DataLoader& calib,
    const QuantizeOptions& options = {});

/// compile_plan() + quantize_plan() in one step: the paper's
/// search -> freeze -> int8 deployment arc for either reference model.
std::shared_ptr<const CompiledPlan> compile_quantized(
    const models::TempoNet& model, const data::DataLoader& calib,
    const QuantizeOptions& options = {});
std::shared_ptr<const CompiledPlan> compile_quantized(
    const models::ResTCN& model, index_t input_steps,
    const data::DataLoader& calib, const QuantizeOptions& options = {});

/// Per-op accuracy of the int8 program against the fp32 program of the
/// same plan, on one input batch: runs both and compares every
/// intermediate activation (dequantized) against the float reference.
struct QuantLayerDelta {
  std::size_t op = 0;         // op index in plan order
  std::string desc;           // "conv 4->32 k3 d2" style
  double max_abs_err = 0.0;
  double mean_abs_err = 0.0;
  double bound = 0.0;         // worst-case bound for this value
};
std::vector<QuantLayerDelta> compare_quantized_layers(
    const CompiledPlan& quantized, const Tensor& input);

}  // namespace pit::runtime
