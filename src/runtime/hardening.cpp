#include "runtime/hardening.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tensor/error.hpp"

#if PIT_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace pit::runtime::hardening {

namespace {

Mode clamp(Mode m) {
  if (m == Mode::kPoison && !kAsanBuild) {
    return Mode::kCanary;
  }
  return m;
}

Mode resolve_from_env() {
  const char* env = std::getenv("PIT_VERIFY");
  if (env != nullptr) {
    const std::string v(env);
    if (v == "off" || v == "0" || v == "none") {
      return Mode::kOff;
    }
    if (v == "canary") {
      return Mode::kCanary;
    }
    if (v == "poison" || v == "address") {
      return clamp(Mode::kPoison);
    }
    PIT_CHECK(false, "PIT_VERIFY: unknown mode '"
                         << v << "' (accepted: off, canary, poison)");
  }
  // No override: ASan builds harden by default, plain builds stay free.
  return kAsanBuild ? Mode::kPoison : Mode::kOff;
}

std::atomic<Mode>& mode_slot() {
  static std::atomic<Mode> slot{resolve_from_env()};
  return slot;
}

}  // namespace

Mode mode() { return mode_slot().load(std::memory_order_relaxed); }

Mode set_mode_for_test(Mode m) {
  return mode_slot().exchange(clamp(m), std::memory_order_relaxed);
}

void poison(const void* p, std::size_t bytes) {
#if PIT_ASAN
  __asan_poison_memory_region(p, bytes);
#else
  (void)p;
  (void)bytes;
#endif
}

void unpoison(const void* p, std::size_t bytes) {
#if PIT_ASAN
  __asan_unpoison_memory_region(p, bytes);
#else
  (void)p;
  (void)bytes;
#endif
}

void fill_canary(void* p, std::size_t bytes) {
  std::memset(p, kCanaryByte, bytes);
}

bool check_canary(const void* p, std::size_t bytes) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  for (std::size_t i = 0; i < bytes; ++i) {
    if (b[i] != kCanaryByte) {
      return false;
    }
  }
  return true;
}

void raise_canary_failure(const char* where, int op, int value, long long lo,
                          long long hi) {
  PIT_CHECK(false, where << ": canary clobbered — a kernel wrote outside "
                            "its declared footprint at op #"
                         << op << ", value v" << value << ", element range ["
                         << lo << ", " << hi
                         << ") (PIT_VERIFY=canary enforcement; rebuild with "
                            "PIT_SANITIZE=address for the faulting frame)");
}

}  // namespace pit::runtime::hardening
