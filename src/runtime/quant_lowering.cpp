// Int8 lowering of a CompiledPlan: calibration, per-value quantization
// parameters, byte-arena planning, per-op requantize-constant emission,
// error propagation, and the lowering-time kernel binding that resolves
// every quantized op to a concrete registry kernel exactly once.
// Execution lives in executor_i8.cpp / executor_stream_i8.cpp.
#include "runtime/quantize_plan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "nn/kernels/registry.hpp"
#include "runtime/arena.hpp"
#include "runtime/executor_detail.hpp"
#include "runtime/verify.hpp"
#include "tensor/error.hpp"

namespace pit::runtime {

namespace {
using nn::kernels::kQuantCiGroup;
using nn::kernels::kQuantCo;
using nn::kernels::quant_groups;
}  // namespace

/// Friend of CompiledPlan: builds the int8 program onto a copy of the
/// fp32 plan, and runs the per-layer fp32-vs-int8 comparison.
class QuantizedCompiler {
 public:
  static std::shared_ptr<const CompiledPlan> quantize(
      const CompiledPlan& src, const data::DataLoader& calib,
      const QuantizeOptions& options);
  static std::vector<QuantLayerDelta> compare(const CompiledPlan& q,
                                              const Tensor& input);

 private:
  static std::string op_desc(const detail::Op& op);
};

std::string QuantizedCompiler::op_desc(const detail::Op& op) {
  std::ostringstream os;
  switch (op.kind) {
    case detail::OpKind::kConv:
      os << "conv " << op.c_in << "->" << op.c_out << " k" << op.k << " d"
         << op.dilation;
      break;
    case detail::OpKind::kLinear:
      os << "linear " << op.c_in << "->" << op.c_out;
      break;
    case detail::OpKind::kAvgPool:
      os << "avg_pool k" << op.k << " s" << op.stride;
      break;
    case detail::OpKind::kAdd:
      os << "add";
      break;
  }
  if (op.relu) {
    os << " +relu";
  }
  return os.str();
}

std::shared_ptr<const CompiledPlan> QuantizedCompiler::quantize(
    const CompiledPlan& src, const data::DataLoader& calib,
    const QuantizeOptions& options) {
  // Only the stride-1 packed conv path is lowered (every conv of the
  // reference TCNs after freezing; strided downsampling happens in pools).
  for (const detail::Op& op : src.ops_) {
    PIT_CHECK(op.kind != detail::OpKind::kConv || (op.packed &&
                                                   op.stride == 1),
              "quantize_plan: strided convs have no int8 lowering");
  }

  // ---- calibrate ---------------------------------------------------------
  const std::size_t nsrc_values = src.values_.size();
  std::vector<quant::RangeObserver> observers(
      nsrc_values, quant::RangeObserver(options.observer));
  const CompiledPlan::ValueHook hook =
      [&](ValueId v, const float* data, index_t rows, index_t steps,
          index_t stride) {
        quant::RangeObserver& obs =
            observers[static_cast<std::size_t>(
                src.root_[static_cast<std::size_t>(v)])];
        if (stride == steps) {
          obs.observe({data, static_cast<std::size_t>(rows * steps)});
        } else {
          for (index_t r = 0; r < rows; ++r) {
            obs.observe({data + r * stride,
                         static_cast<std::size_t>(steps)});
          }
        }
      };
  const index_t batches =
      std::min(calib.num_batches(), options.max_calibration_batches);
  PIT_CHECK(batches >= 1, "quantize_plan: empty calibration loader");
  {
    ExecutionContext cctx;
    for (index_t bi = 0; bi < batches; ++bi) {
      src.forward_fp32(calib.batch(bi).inputs, cctx, &hook);
    }
  }

  CompiledPlan q(src);
  q.quantized_ = true;
  // Streamability survives the lowering: a stride-1-conv/add plan streams
  // its int8 program through u8 ring buffers (layout planned below).

  const auto in_root =
      static_cast<std::size_t>(q.root_[static_cast<std::size_t>(q.input_)]);
  const auto out_root =
      static_cast<std::size_t>(q.root_[static_cast<std::size_t>(q.output_)]);

  // The input is always staged (dtype conversion); reuse the fp32 staging
  // value when one exists, otherwise append one. Appended entries extend
  // every per-value array so the retained fp32 program stays consistent.
  if (q.input_stage_ >= 0) {
    q.q_stage_ = q.input_stage_;
  } else {
    const detail::Value in_value = q.values_[in_root];
    q.q_stage_ = static_cast<ValueId>(q.values_.size());
    q.values_.push_back({in_value.channels, in_value.steps, -1});
    q.root_.push_back(q.q_stage_);
    q.lead_.push_back(0);
    q.slack_.push_back(0);
    q.stride_.push_back(in_value.steps);
    q.offsets_.push_back(-1);
  }
  const std::size_t nvals = q.values_.size();
  const auto stage = static_cast<std::size_t>(q.q_stage_);

  // ---- per-value quantization parameters and clip error ------------------
  q.qvalue_.assign(nvals, quant::QuantParams{});
  std::vector<double> clip_err(nvals, 0.0);
  std::vector<double> xmax(nvals, 0.0);
  for (std::size_t v = 0; v < nsrc_values; ++v) {
    if (src.root_[v] != static_cast<ValueId>(v) || !observers[v].seen()) {
      continue;
    }
    q.qvalue_[v] = observers[v].affine_u8_params();
    float lo = 0.0F;
    float hi = 0.0F;
    observers[v].calibrated_range(&lo, &hi);
    clip_err[v] = std::max(
        0.0, std::max(static_cast<double>(lo) - observers[v].min(),
                      static_cast<double>(observers[v].max()) - hi));
    xmax[v] = std::max(std::fabs(static_cast<double>(observers[v].min())),
                       std::fabs(static_cast<double>(observers[v].max())));
  }
  // Propagate to aliases (reporting convenience) and the staging value.
  for (std::size_t v = 0; v < nsrc_values; ++v) {
    const auto r = static_cast<std::size_t>(src.root_[v]);
    if (r != v) {
      q.qvalue_[v] = q.qvalue_[r];
    }
  }
  q.qvalue_[stage] = q.qvalue_[in_root];
  clip_err[stage] = clip_err[in_root];
  xmax[stage] = xmax[in_root];

  // ---- byte-row layout: zero-point lead before every conv input ----------
  q.q_lead_.assign(nvals, 0);
  const auto qroot = [&](ValueId v) -> std::size_t {
    auto r = static_cast<std::size_t>(q.root_[static_cast<std::size_t>(v)]);
    return r == in_root ? stage : r;
  };
  for (const detail::Op& op : q.ops_) {
    if (op.kind == detail::OpKind::kConv) {
      const std::size_t r = qroot(op.in0);
      q.q_lead_[r] =
          std::max(q.q_lead_[r], (op.k - 1) * op.dilation);
    }
  }
  for (std::size_t v = 0; v < nvals; ++v) {
    if (q.values_[v].alias_of >= 0) {
      PIT_CHECK(q.q_lead_[qroot(static_cast<ValueId>(v))] == 0,
                "quantize_plan: flatten of a conv-consumed value is not "
                "supported");
    }
  }
  q.q_stride_.assign(nvals, 0);
  for (std::size_t v = 0; v < nvals; ++v) {
    q.q_stride_[v] = q.q_lead_[v] + q.values_[v].steps;
  }

  // ---- liveness + byte arena (same planner as the fp32 arena) ------------
  std::vector<int> def(nvals, -1);
  std::vector<int> last(nvals, -1);
  for (std::size_t i = 0; i < q.ops_.size(); ++i) {
    const detail::Op& op = q.ops_[i];
    const auto touch = [&](ValueId v, std::vector<int>& slot) {
      if (v >= 0) {
        slot[qroot(v)] = static_cast<int>(i);
      }
    };
    touch(op.in0, last);
    touch(op.in1, last);
    touch(op.out, def);
  }
  std::vector<ArenaRequest> requests;
  std::vector<std::size_t> request_root;
  // Staging block: live from before op 0 until the last input reader.
  requests.push_back({quant_groups(q.values_[stage].channels) *
                          kQuantCiGroup * q.q_stride_[stage],
                      0, std::max(last[stage], 0)});
  request_root.push_back(stage);
  for (std::size_t v = 0; v < nvals; ++v) {
    if (q.root_[v] != static_cast<ValueId>(v) || v == stage ||
        v == out_root || def[v] < 0) {
      continue;
    }
    requests.push_back({quant_groups(q.values_[v].channels) *
                            kQuantCiGroup * q.q_stride_[v],
                        def[v], std::max(last[v], def[v])});
    request_root.push_back(v);
  }
  const ArenaPlan arena = plan_arena(requests);
  q.q_off_.assign(nvals, -1);
  for (std::size_t r = 0; r < request_root.size(); ++r) {
    q.q_off_[request_root[r]] = arena.offsets[r];
  }
  q.q_arena_bytes_ = arena.total;

  // ---- streaming layout: per-conv u8 rings + single-step quad vectors ----
  if (q.streamable_) {
    q.q_ring_off_.assign(q.ops_.size(), -1);
    for (std::size_t i = 0; i < q.ops_.size(); ++i) {
      const detail::Op& op = q.ops_[i];
      if (op.kind == detail::OpKind::kConv) {
        q.q_ring_off_[i] = q.q_ring_bytes_;
        q.q_ring_bytes_ += quant_groups(op.c_in) *
                           ((op.k - 1) * op.dilation + 1) * kQuantCiGroup;
      }
    }
    q.q_val_off_.assign(nvals, -1);
    for (std::size_t v = 0; v < nvals; ++v) {
      if (q.root_[v] == static_cast<ValueId>(v)) {
        q.q_val_off_[v] = q.q_val_bytes_;
        q.q_val_bytes_ +=
            quant_groups(q.values_[v].channels) * kQuantCiGroup;
      }
    }
  }

  // ---- per-op lowering + error propagation -------------------------------
  std::vector<double> bound(nvals, 0.0);   // worst-case |int8 - fp32|
  std::vector<double> var(nvals, 0.0);     // RMS model variance
  {
    const double s_in = q.qvalue_[stage].scale;
    bound[stage] = s_in / 2.0 + clip_err[stage];
    var[stage] = s_in * s_in / 12.0;
    bound[in_root] = bound[stage];
    var[in_root] = var[stage];
  }

  q.qops_.assign(q.ops_.size(), detail::QuantOp{});
  for (std::size_t i = 0; i < q.ops_.size(); ++i) {
    const detail::Op& op = q.ops_[i];
    detail::QuantOp& qop = q.qops_[i];
    const std::size_t rin = qroot(op.in0);
    const std::size_t rout = qroot(op.out);
    qop.out_float = rout == out_root;
    const quant::QuantParams px = q.qvalue_[rin];
    const quant::QuantParams py = q.qvalue_[rout];
    const double e_in = bound[rin];
    const double e_store =
        qop.out_float ? 0.0 : py.scale / 2.0 + clip_err[rout];
    const double var_store =
        qop.out_float
            ? 0.0
            : static_cast<double>(py.scale) * py.scale / 12.0 +
                  clip_err[rout] * clip_err[rout];
    qop.out_lo = (!qop.out_float && op.relu) ? py.zero_point : 0;

    if (op.kind == detail::OpKind::kConv ||
        op.kind == detail::OpKind::kLinear) {
      const bool is_conv = op.kind == detail::OpKind::kConv;
      // Recover the folded float weights from the fp32 program.
      const index_t cnt = op.c_in * (is_conv ? op.k : 1);
      index_t f4 = cnt;  // quantized feature count (pad lanes included)
      const float* wsrc = q.params_.data(op.w_blk);
      std::vector<float> w(static_cast<std::size_t>(op.c_out * cnt));
      if (is_conv) {
        // Undo the fp32 inference packing: wp[(ci*k + i)*co_r4 + co].
        const index_t co_r4 = (op.c_out + nn::kernels::kPackCo - 1) /
                              nn::kernels::kPackCo * nn::kernels::kPackCo;
        for (index_t co = 0; co < op.c_out; ++co) {
          for (index_t ci = 0; ci < op.c_in; ++ci) {
            for (index_t tap = 0; tap < op.k; ++tap) {
              w[static_cast<std::size_t>((co * op.c_in + ci) * op.k + tap)] =
                  wsrc[static_cast<std::size_t>(
                      (ci * op.k + tap) * co_r4 + co)];
            }
          }
        }
      } else {
        // Permute the dense (o, f) columns into the flattened C4 byte
        // order of the input value (pad lanes get zero columns).
        const auto rv = static_cast<std::size_t>(
            q.root_[static_cast<std::size_t>(op.in0)]);
        const index_t c_r = q.values_[rv].channels;
        const index_t t_r = q.values_[rv].steps;
        PIT_CHECK(op.c_in == c_r * t_r,
                  "quantize_plan: linear features " << op.c_in
                                                    << " != " << c_r << "x"
                                                    << t_r);
        f4 = quant_groups(c_r) * kQuantCiGroup * t_r;
        w.assign(static_cast<std::size_t>(op.c_out * f4), 0.0F);
        for (index_t o = 0; o < op.c_out; ++o) {
          for (index_t ch = 0; ch < c_r; ++ch) {
            for (index_t ts = 0; ts < t_r; ++ts) {
              w[static_cast<std::size_t>(
                  o * f4 + (ch / kQuantCiGroup) * kQuantCiGroup * t_r +
                  kQuantCiGroup * ts + ch % kQuantCiGroup)] =
                  wsrc[static_cast<std::size_t>(o * op.c_in + ch * t_r +
                                                ts)];
            }
          }
        }
      }
      const index_t row = is_conv ? cnt : f4;

      // Per-output-channel symmetric s8 quantization of the weights.
      std::vector<std::int8_t> wq(w.size());
      std::vector<float> s_w(static_cast<std::size_t>(op.c_out));
      std::vector<std::int32_t> wsum(static_cast<std::size_t>(op.c_out), 0);
      double worst_term = 0.0;
      double worst_var = 0.0;
      for (index_t co = 0; co < op.c_out; ++co) {
        const float* wrow = w.data() + co * row;
        float max_abs = 0.0F;
        double l1 = 0.0;
        double l2 = 0.0;
        for (index_t e = 0; e < row; ++e) {
          max_abs = std::max(max_abs, std::fabs(wrow[e]));
          l1 += std::fabs(static_cast<double>(wrow[e]));
          l2 += static_cast<double>(wrow[e]) * wrow[e];
        }
        const float scale =
            max_abs > 0.0F ? std::max(max_abs / 127.0F, quant::kMinScale)
                           : 1.0F;
        s_w[static_cast<std::size_t>(co)] = scale;
        for (index_t e = 0; e < row; ++e) {
          const auto v = static_cast<std::int32_t>(std::clamp<long>(
              std::lrintf(wrow[e] / scale), -127, 127));
          wq[static_cast<std::size_t>(co * row + e)] =
              static_cast<std::int8_t>(v);
          wsum[static_cast<std::size_t>(co)] += v;
        }
        // |Δy| <= Σ|w||Δx| + Σ|Δw|(|x| + |Δx|), |Δw| <= s_w/2 per weight.
        const double dw = scale / 2.0;
        worst_term = std::max(
            worst_term, l1 * e_in + dw * static_cast<double>(cnt) *
                                        (xmax[rin] + e_in));
        worst_var = std::max(
            worst_var,
            l2 * var[rin] + dw * dw / 3.0 * static_cast<double>(cnt) *
                                (xmax[rin] / 2.0) * (xmax[rin] / 2.0));
      }

      // Pack and emit the requantize constants (bias, zero-point
      // correction, and output zero point folded in).
      nn::kernels::ConvDims wd{};
      wd.c_in = is_conv ? op.c_in : f4;
      wd.c_out = op.c_out;
      wd.k = is_conv ? op.k : 1;
      // s8 weights depend only on the fp32 weights (not on calibration),
      // so interning through the shared pool dedups them across versions
      // whose layer weights are bytewise identical.
      std::vector<std::int8_t> packed(static_cast<std::size_t>(
          nn::kernels::packed_weight_bytes_i8(wd)));
      nn::kernels::pack_conv_weight_i8(wq.data(), wd, packed.data());
      qop.w_blk = q.qweights_.add(std::move(packed), options.pool);

      const index_t co_round =
          (op.c_out + kQuantCo - 1) / kQuantCo * kQuantCo;
      qop.m_off = static_cast<index_t>(q.qconsts_.size());
      q.qconsts_.resize(q.qconsts_.size() +
                        static_cast<std::size_t>(co_round));
      qop.b_off = static_cast<index_t>(q.qconsts_.size());
      q.qconsts_.resize(q.qconsts_.size() +
                        static_cast<std::size_t>(co_round));
      float* mv = q.qconsts_.data() + qop.m_off;
      float* bv = q.qconsts_.data() + qop.b_off;
      for (index_t co = 0; co < co_round; ++co) {
        if (co >= op.c_out) {
          mv[co] = 0.0F;
          bv[co] = qop.out_float ? 0.0F
                                 : static_cast<float>(py.zero_point);
          continue;
        }
        const float bias =
            op.b_blk >= 0 ? q.params_.data(op.b_blk)[co] : 0.0F;
        const float sw = s_w[static_cast<std::size_t>(co)];
        const auto ws =
            static_cast<float>(wsum[static_cast<std::size_t>(co)]);
        if (qop.out_float) {
          mv[co] = px.scale * sw;
          bv[co] = bias - mv[co] * static_cast<float>(px.zero_point) * ws;
        } else {
          mv[co] = px.scale * sw / py.scale;
          bv[co] = bias / py.scale + static_cast<float>(py.zero_point) -
                   mv[co] * static_cast<float>(px.zero_point) * ws;
        }
      }
      bound[rout] = worst_term + e_store;
      var[rout] = worst_var + var_store;
    } else if (op.kind == detail::OpKind::kAvgPool) {
      const auto inv_k = 1.0F / static_cast<float>(op.k);
      if (qop.out_float) {
        qop.a_mul = px.scale * inv_k;
        qop.c_add = -px.scale * static_cast<float>(px.zero_point);
      } else {
        qop.a_mul = px.scale * inv_k / py.scale;
        qop.c_add = static_cast<float>(py.zero_point) -
                    px.scale / py.scale *
                        static_cast<float>(px.zero_point);
      }
      bound[rout] = e_in + e_store;
      var[rout] = var[rin] + var_store;
    } else {  // kAdd
      const std::size_t rb = qroot(op.in1);
      const quant::QuantParams pb = q.qvalue_[rb];
      if (qop.out_float) {
        qop.a_mul = px.scale;
        qop.b_mul = pb.scale;
        qop.c_add = -px.scale * static_cast<float>(px.zero_point) -
                    pb.scale * static_cast<float>(pb.zero_point);
      } else {
        qop.a_mul = px.scale / py.scale;
        qop.b_mul = pb.scale / py.scale;
        qop.c_add = static_cast<float>(py.zero_point) -
                    qop.a_mul * static_cast<float>(px.zero_point) -
                    qop.b_mul * static_cast<float>(pb.zero_point);
      }
      bound[rout] = e_in + bound[rb] + e_store;
      var[rout] = var[rin] + var[rb] + var_store;
    }
  }

  // ---- kernel binding ----------------------------------------------------
  // Resolve every lowered op to concrete i8 registry kernels, once. The
  // quantized executors only ever call these pointers — no per-call
  // variant table walks.
  const auto& reg = nn::kernels::Registry::instance();
  {
    const auto stage_k = reg.stage_i8();
    q.qstage_fn_ = stage_k.fn;
    q.qstage_meta_ = stage_k.meta;
  }
  for (std::size_t i = 0; i < q.ops_.size(); ++i) {
    const detail::Op& op = q.ops_[i];
    detail::QuantOp& qop = q.qops_[i];
    switch (op.kind) {
      case detail::OpKind::kConv: {
        const nn::kernels::ConvSig sig{op.k, op.c_in, op.c_out};
        const auto conv = reg.conv_packed_i8(sig);
        qop.bind.conv = conv.fn;
        qop.bind.meta = conv.meta;
        const auto step = reg.conv_step_i8(sig);
        qop.bind.step = step.fn;
        qop.bind.step_meta = step.meta;
        break;
      }
      case detail::OpKind::kLinear: {
        // The i8 linear is the k = 1, t = 1 case of the quantized conv
        // (one contiguous run of f4 feature quads) — bind that signature.
        const auto rv = static_cast<std::size_t>(
            q.root_[static_cast<std::size_t>(op.in0)]);
        const index_t f4 = quant_groups(q.values_[rv].channels) *
                           kQuantCiGroup * q.values_[rv].steps;
        const auto lin = reg.conv_packed_i8({1, f4, op.c_out});
        qop.bind.conv = lin.fn;
        qop.bind.meta = lin.meta;
        break;
      }
      case detail::OpKind::kAvgPool:
        // Executed by a loop inside the quantized executor itself.
        qop.bind.meta = &nn::kernels::Registry::inline_meta();
        break;
      case detail::OpKind::kAdd: {
        const auto add = reg.add_i8();
        qop.bind.add = add.fn;
        // A dequantizing (out_float) add runs the executor's inline
        // float-store loop instead of the u8 kernel.
        qop.bind.meta = qop.out_float
                            ? &nn::kernels::Registry::inline_meta()
                            : add.meta;
        break;
      }
    }
  }

  q.q_value_bound_ = bound;
  q.q_error_bound_ = bound[out_root];
  q.q_error_estimate_ = std::sqrt(var[out_root]);

  // Re-prove the full memory model over the lowered program: the fp32
  // layouts survived intact AND the int8 byte arena / bindings hold.
  analysis::verify_or_throw(q, "quantize_plan");
  return std::make_shared<const CompiledPlan>(std::move(q));
}

std::vector<QuantLayerDelta> QuantizedCompiler::compare(
    const CompiledPlan& q, const Tensor& input) {
  PIT_CHECK(q.quantized_, "compare_quantized_layers: plan is not quantized");
  std::unordered_map<ValueId, std::vector<float>> reference;
  const CompiledPlan::ValueHook capture =
      [&](ValueId v, const float* data, index_t rows, index_t steps,
          index_t stride) {
        std::vector<float>& dst = reference[v];
        dst.resize(static_cast<std::size_t>(rows * steps));
        for (index_t r = 0; r < rows; ++r) {
          std::copy(data + r * stride, data + r * stride + steps,
                    dst.data() + r * steps);
        }
      };
  ExecutionContext ref_ctx;
  q.forward_fp32(input, ref_ctx, &capture);

  std::vector<QuantLayerDelta> deltas;
  std::unordered_map<ValueId, std::size_t> op_of;
  for (std::size_t i = 0; i < q.ops_.size(); ++i) {
    op_of[q.ops_[i].out] = i;
  }
  const CompiledPlan::ValueHook compare_hook =
      [&](ValueId v, const float* data, index_t rows, index_t steps,
          index_t stride) {
        const auto it = op_of.find(v);
        if (it == op_of.end()) {
          return;  // the input value
        }
        const std::vector<float>& ref = reference.at(v);
        double worst = 0.0;
        double total = 0.0;
        for (index_t r = 0; r < rows; ++r) {
          for (index_t s = 0; s < steps; ++s) {
            const double diff = std::fabs(
                static_cast<double>(data[r * stride + s]) -
                ref[static_cast<std::size_t>(r * steps + s)]);
            worst = std::max(worst, diff);
            total += diff;
          }
        }
        QuantLayerDelta d;
        d.op = it->second;
        d.desc = op_desc(q.ops_[it->second]);
        d.max_abs_err = worst;
        d.mean_abs_err =
            total / static_cast<double>(std::max<index_t>(rows * steps, 1));
        d.bound = q.q_value_bound_[static_cast<std::size_t>(
            q.root_[static_cast<std::size_t>(v)])];
        deltas.push_back(d);
      };
  ExecutionContext q_ctx;
  q.forward_quantized(input, q_ctx, &compare_hook);
  std::sort(deltas.begin(), deltas.end(),
            [](const QuantLayerDelta& a, const QuantLayerDelta& b) {
              return a.op < b.op;
            });
  return deltas;
}

// ---- Public API ----------------------------------------------------------

std::shared_ptr<const CompiledPlan> quantize_plan(
    const CompiledPlan& plan, const data::DataLoader& calib,
    const QuantizeOptions& options) {
  return QuantizedCompiler::quantize(plan, calib, options);
}

std::shared_ptr<const CompiledPlan> compile_quantized(
    const models::TempoNet& model, const data::DataLoader& calib,
    const QuantizeOptions& options) {
  return quantize_plan(*compile_plan(model), calib, options);
}

std::shared_ptr<const CompiledPlan> compile_quantized(
    const models::ResTCN& model, index_t input_steps,
    const data::DataLoader& calib, const QuantizeOptions& options) {
  return quantize_plan(*compile_plan(model, input_steps), calib, options);
}

std::vector<QuantLayerDelta> compare_quantized_layers(
    const CompiledPlan& quantized, const Tensor& input) {
  return QuantizedCompiler::compare(quantized, input);
}

}  // namespace pit::runtime
