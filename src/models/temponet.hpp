// TEMPONet — the temporal convolutional network of Zanghieri et al.
// (IEEE TBioCAS 2020), used by the paper as the seed for PPG-based heart
// rate estimation on PPG-Dalia.
//
// Three feature blocks with batch-norm and ReLU, seven searchable temporal
// convolutions in total with hand-tuned dilations (2, 2, 1, 4, 4, 8, 8):
//   B1: k3 d2 (in->32), k3 d2 (32->32), k5 d1 (32->64), avg-pool /2
//   B2: k3 d4 (64->64), k3 d4 (64->64),                 avg-pool /2
//   B3: k3 d8 (64->128), k3 d8 (128->128),              avg-pool /2
// followed by a two-layer fully-connected regression head that outputs the
// window's heart rate in BPM.
#pragma once

#include <memory>
#include <vector>

#include "models/tcn_common.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace pit::models {

struct TempoNetConfig {
  index_t input_channels = 4;  // PPG + 3-axis accelerometer
  index_t input_length = 256;  // 8 s at 32 Hz
  index_t output_dim = 1;      // HR in BPM
  /// Base channel widths of the three blocks.
  index_t block1_channels = 32;
  index_t block2_channels = 64;
  index_t block3_channels = 128;
  index_t fc_hidden = 48;
  /// Per-conv hand-tuned dilations, length 7.
  std::vector<index_t> dilations = {2, 2, 1, 4, 4, 8, 8};
  float dropout = 0.1F;
  /// Uniformly scales all channel widths (1.0 = paper-sized).
  double channel_scale = 1.0;
};

/// TEMPONet over (N, 4, input_length) -> (N, 1) heart-rate regression.
class TempoNet : public nn::Module {
 public:
  TempoNet(const TempoNetConfig& config, const ConvFactory& factory,
           RandomEngine& rng);

  Tensor forward(const Tensor& input) override;

  /// The seven searchable temporal convs, in network order.
  std::vector<nn::Module*> temporal_convs() const;

  /// Hand-tuned geometry of the searchable convs for this config.
  static std::vector<TemporalConvSpec> conv_specs(const TempoNetConfig& config);

  /// Parameter count with per-conv dilations assigned over the seed
  /// receptive fields (alive taps only), including BN and the FC head.
  static index_t params_with_dilations(const TempoNetConfig& config,
                                       const std::vector<index_t>& dilations);

  /// Time steps entering the flatten/FC stage for this config.
  static index_t flattened_steps(const TempoNetConfig& config);

  // Layer access for the frozen inference compiler (src/runtime), which
  // folds each batch-norm into its conv and fuses the activations.
  const nn::BatchNorm1d& norm(std::size_t i) const { return *norms_.at(i); }
  const nn::AvgPool1d& pool(std::size_t p) const { return *pools_.at(p); }
  const nn::Linear& fc1() const { return *fc1_; }
  const nn::Linear& fc2() const { return *fc2_; }

  const TempoNetConfig& config() const { return config_; }

 private:
  TempoNetConfig config_;
  std::vector<std::unique_ptr<nn::Module>> convs_;
  std::vector<std::unique_ptr<nn::BatchNorm1d>> norms_;
  std::vector<std::unique_ptr<nn::AvgPool1d>> pools_;
  std::unique_ptr<nn::Linear> fc1_;
  std::unique_ptr<nn::Linear> fc2_;
  std::unique_ptr<nn::Dropout> fc_drop_;
};

}  // namespace pit::models
