#include "models/temponet.hpp"

#include "tensor/error.hpp"
#include "tensor/ops.hpp"

namespace pit::models {

namespace {

struct Channels {
  index_t c1, c2, c3, fc;
};

Channels scaled_channels(const TempoNetConfig& c) {
  return {scale_channels(c.block1_channels, c.channel_scale),
          scale_channels(c.block2_channels, c.channel_scale),
          scale_channels(c.block3_channels, c.channel_scale),
          scale_channels(c.fc_hidden, c.channel_scale)};
}

}  // namespace

std::vector<TemporalConvSpec> TempoNet::conv_specs(
    const TempoNetConfig& config) {
  PIT_CHECK(config.dilations.size() == 7,
            "TempoNet: expected 7 dilations, got " << config.dilations.size());
  const Channels ch = scaled_channels(config);
  const auto& d = config.dilations;
  return {
      {config.input_channels, ch.c1, 3, d[0], 1},  // B1 conv 1
      {ch.c1, ch.c1, 3, d[1], 1},                  // B1 conv 2
      {ch.c1, ch.c2, 5, d[2], 1},                  // B1 conv 3 (k5)
      {ch.c2, ch.c2, 3, d[3], 1},                  // B2 conv 1
      {ch.c2, ch.c2, 3, d[4], 1},                  // B2 conv 2
      {ch.c2, ch.c3, 3, d[5], 1},                  // B3 conv 1
      {ch.c3, ch.c3, 3, d[6], 1},                  // B3 conv 2
  };
}

index_t TempoNet::flattened_steps(const TempoNetConfig& config) {
  // Three /2 average pools; convs are stride 1.
  index_t t = config.input_length;
  for (int i = 0; i < 3; ++i) {
    PIT_CHECK(t >= 2, "TempoNet: input_length too short for three pools");
    t = (t - 2) / 2 + 1;
  }
  return t;
}

TempoNet::TempoNet(const TempoNetConfig& config, const ConvFactory& factory,
                   RandomEngine& rng)
    : config_(config) {
  const auto specs = conv_specs(config);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto conv = factory(specs[i]);
    register_module("conv" + std::to_string(i), conv.get());
    convs_.push_back(std::move(conv));
    auto bn = std::make_unique<nn::BatchNorm1d>(specs[i].out_channels);
    register_module("bn" + std::to_string(i), bn.get());
    norms_.push_back(std::move(bn));
  }
  for (int p = 0; p < 3; ++p) {
    auto pool = std::make_unique<nn::AvgPool1d>(2, 2);
    register_module("pool" + std::to_string(p), pool.get());
    pools_.push_back(std::move(pool));
  }
  const Channels ch = scaled_channels(config);
  const index_t flat = ch.c3 * flattened_steps(config);
  fc1_ = std::make_unique<nn::Linear>(flat, ch.fc, true, rng);
  register_module("fc1", fc1_.get());
  fc_drop_ = std::make_unique<nn::Dropout>(config.dropout, rng);
  register_module("fc_drop", fc_drop_.get());
  fc2_ = std::make_unique<nn::Linear>(ch.fc, config.output_dim, true, rng);
  register_module("fc2", fc2_.get());
}

Tensor TempoNet::forward(const Tensor& input) {
  PIT_CHECK(input.rank() == 3 && input.dim(1) == config_.input_channels &&
                input.dim(2) == config_.input_length,
            "TempoNet: expected (N, " << config_.input_channels << ", "
                                      << config_.input_length << "), got "
                                      << input.shape().to_string());
  auto conv_bn_relu = [this](const Tensor& x, std::size_t i) {
    return relu(norms_[i]->forward(convs_[i]->forward(x)));
  };
  Tensor x = input;
  // Block 1: three convs then pool.
  x = conv_bn_relu(x, 0);
  x = conv_bn_relu(x, 1);
  x = conv_bn_relu(x, 2);
  x = pools_[0]->forward(x);
  // Block 2: two convs then pool.
  x = conv_bn_relu(x, 3);
  x = conv_bn_relu(x, 4);
  x = pools_[1]->forward(x);
  // Block 3: two convs then pool.
  x = conv_bn_relu(x, 5);
  x = conv_bn_relu(x, 6);
  x = pools_[2]->forward(x);
  // Regression head.
  x = nn::flatten(x);
  x = fc_drop_->forward(relu(fc1_->forward(x)));
  return fc2_->forward(x);
}

std::vector<nn::Module*> TempoNet::temporal_convs() const {
  std::vector<nn::Module*> out;
  out.reserve(convs_.size());
  for (const auto& c : convs_) {
    out.push_back(c.get());
  }
  return out;
}

index_t TempoNet::params_with_dilations(const TempoNetConfig& config,
                                        const std::vector<index_t>& dilations) {
  const auto specs = conv_specs(config);
  PIT_CHECK(dilations.size() == specs.size(),
            "TempoNet::params_with_dilations: " << dilations.size()
                                                << " dilations for "
                                                << specs.size() << " convs");
  index_t total = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const index_t rf = specs[i].receptive_field();
    PIT_CHECK(dilations[i] >= 1 && dilations[i] <= rf,
              "TempoNet: dilation " << dilations[i] << " invalid for rf "
                                    << rf);
    total += specs[i].in_channels * specs[i].out_channels *
                 alive_taps(rf, dilations[i]) +
             specs[i].out_channels;          // conv bias
    total += 2 * specs[i].out_channels;      // batch-norm gamma/beta
  }
  const Channels ch = scaled_channels(config);
  const index_t flat = ch.c3 * flattened_steps(config);
  total += flat * ch.fc + ch.fc;                            // fc1
  total += ch.fc * config.output_dim + config.output_dim;   // fc2
  return total;
}

}  // namespace pit::models
