// Shared vocabulary for TCN model builders.
//
// Both benchmark architectures (ResTCN, TEMPONet) describe their temporal
// convolutions as TemporalConvSpec records (the hand-tuned geometry from the
// papers) and materialize them through a ConvFactory. Swapping the factory
// is how the same topology becomes:
//   * the hand-tuned network    (plain convs, spec geometry as-is),
//   * the PIT seed              (kernel = receptive field, dilation = 1),
//   * a PIT search network      (PITConv1d, src/core),
//   * a ProxylessNAS supernet   (MixedConv1d, src/nas).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/conv1d.hpp"
#include "nn/module.hpp"
#include "tensor/random.hpp"

namespace pit::models {

/// Geometry of one searchable temporal convolution (hand-tuned reference).
struct TemporalConvSpec {
  index_t in_channels = 1;
  index_t out_channels = 1;
  index_t kernel_size = 3;  // hand-tuned filter taps
  index_t dilation = 1;     // hand-tuned dilation
  index_t stride = 1;

  /// Receptive field on the time axis; the PIT seed uses this as its
  /// maximally-sized undilated kernel (rf_max).
  index_t receptive_field() const {
    return (kernel_size - 1) * dilation + 1;
  }
};

/// Builds the module implementing one temporal conv of the network.
using ConvFactory =
    std::function<std::unique_ptr<nn::Module>(const TemporalConvSpec& spec)>;

/// Plain convs with the spec's hand-tuned kernel and dilation.
ConvFactory hand_tuned_conv_factory(RandomEngine& rng);

/// The paper's seed transform: kernel = receptive field, dilation = 1
/// ("maximally-sized filters with no dilation", Sec. III).
ConvFactory seed_conv_factory(RandomEngine& rng);

/// Convs with explicitly assigned power-of-two dilations over the seed
/// receptive field: layer i gets kernel = floor((rf_i - 1)/d_i) + 1 and
/// dilation d_i. Used to materialize PIT / NAS search results.
ConvFactory dilated_conv_factory(RandomEngine& rng,
                                 std::vector<index_t> dilations);

/// Number of filter taps that survive when the seed receptive field `rf`
/// is covered with dilation `d`: floor((rf - 1) / d) + 1.
index_t alive_taps(index_t rf, index_t d);

inline ConvFactory hand_tuned_conv_factory(RandomEngine& rng) {
  return [&rng](const TemporalConvSpec& spec) {
    return std::make_unique<nn::Conv1d>(
        spec.in_channels, spec.out_channels, spec.kernel_size,
        nn::Conv1dOptions{.dilation = spec.dilation,
                          .stride = spec.stride,
                          .bias = true},
        rng);
  };
}

inline ConvFactory seed_conv_factory(RandomEngine& rng) {
  return [&rng](const TemporalConvSpec& spec) {
    return std::make_unique<nn::Conv1d>(
        spec.in_channels, spec.out_channels, spec.receptive_field(),
        nn::Conv1dOptions{.dilation = 1, .stride = spec.stride, .bias = true},
        rng);
  };
}

inline index_t alive_taps(index_t rf, index_t d) {
  return (rf - 1) / d + 1;
}

inline ConvFactory dilated_conv_factory(RandomEngine& rng,
                                        std::vector<index_t> dilations) {
  auto remaining = std::make_shared<std::vector<index_t>>(std::move(dilations));
  auto next = std::make_shared<std::size_t>(0);
  return [&rng, remaining, next](const TemporalConvSpec& spec) {
    const index_t d = (*next) < remaining->size() ? (*remaining)[(*next)++] : 1;
    const index_t rf = spec.receptive_field();
    return std::make_unique<nn::Conv1d>(
        spec.in_channels, spec.out_channels, alive_taps(rf, d),
        nn::Conv1dOptions{.dilation = d, .stride = spec.stride, .bias = true},
        rng);
  };
}

/// Scales a channel count by `scale`, keeping at least one channel.
index_t scale_channels(index_t base, double scale);

inline index_t scale_channels(index_t base, double scale) {
  const auto scaled = static_cast<index_t>(base * scale + 0.5);
  return scaled < 1 ? 1 : scaled;
}

}  // namespace pit::models
