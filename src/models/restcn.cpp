#include "models/restcn.hpp"

#include "tensor/error.hpp"
#include "tensor/ops.hpp"

namespace pit::models {

std::vector<TemporalConvSpec> ResTCN::conv_specs(const ResTcnConfig& config) {
  PIT_CHECK(config.dilations.size() % 2 == 0 && !config.dilations.empty(),
            "ResTCN: dilations must come in per-block pairs");
  const index_t hidden =
      scale_channels(config.hidden_channels, config.channel_scale);
  std::vector<TemporalConvSpec> specs;
  const std::size_t num_blocks = config.dilations.size() / 2;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const index_t in_ch = b == 0 ? config.input_channels : hidden;
    specs.push_back({in_ch, hidden, config.kernel_size,
                     config.dilations[2 * b], 1});
    specs.push_back({hidden, hidden, config.kernel_size,
                     config.dilations[2 * b + 1], 1});
  }
  return specs;
}

ResTCN::ResTCN(const ResTcnConfig& config, const ConvFactory& factory,
               RandomEngine& rng)
    : config_(config) {
  const auto specs = conv_specs(config);
  const index_t hidden =
      scale_channels(config.hidden_channels, config.channel_scale);
  const std::size_t num_blocks = specs.size() / 2;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    for (int half = 0; half < 2; ++half) {
      auto conv = factory(specs[2 * b + static_cast<std::size_t>(half)]);
      register_module(
          "block" + std::to_string(b) + ".conv" + std::to_string(half),
          conv.get());
      convs_.push_back(std::move(conv));
      auto drop = std::make_unique<nn::Dropout>(config.dropout, rng);
      register_module(
          "block" + std::to_string(b) + ".drop" + std::to_string(half),
          drop.get());
      dropouts_.push_back(std::move(drop));
    }
    // 1x1 downsample on the residual path when channel counts differ.
    const index_t block_in = b == 0 ? config.input_channels : hidden;
    if (block_in != hidden) {
      auto down = std::make_unique<nn::Conv1d>(
          block_in, hidden, 1,
          nn::Conv1dOptions{.dilation = 1, .stride = 1, .bias = true}, rng);
      register_module("block" + std::to_string(b) + ".down", down.get());
      downsamples_.push_back(std::move(down));
    } else {
      downsamples_.push_back(nullptr);
    }
  }
  head_ = std::make_unique<nn::Conv1d>(
      hidden, config.output_channels, 1,
      nn::Conv1dOptions{.dilation = 1, .stride = 1, .bias = true}, rng);
  register_module("head", head_.get());
}

Tensor ResTCN::forward(const Tensor& input) {
  PIT_CHECK(input.rank() == 3 && input.dim(1) == config_.input_channels,
            "ResTCN: expected (N, " << config_.input_channels << ", T), got "
                                    << input.shape().to_string());
  Tensor x = input;
  const std::size_t num_blocks = convs_.size() / 2;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    Tensor y = convs_[2 * b]->forward(x);
    y = dropouts_[2 * b]->forward(relu(y));
    y = convs_[2 * b + 1]->forward(y);
    y = dropouts_[2 * b + 1]->forward(relu(y));
    Tensor res = downsamples_[b] ? downsamples_[b]->forward(x) : x;
    x = relu(add(y, res));
  }
  return head_->forward(x);
}

std::vector<nn::Module*> ResTCN::temporal_convs() const {
  std::vector<nn::Module*> out;
  out.reserve(convs_.size());
  for (const auto& c : convs_) {
    out.push_back(c.get());
  }
  return out;
}

index_t ResTCN::params_with_dilations(const ResTcnConfig& config,
                                      const std::vector<index_t>& dilations) {
  const auto specs = conv_specs(config);
  PIT_CHECK(dilations.size() == specs.size(),
            "ResTCN::params_with_dilations: " << dilations.size()
                                              << " dilations for "
                                              << specs.size() << " convs");
  const index_t hidden =
      scale_channels(config.hidden_channels, config.channel_scale);
  index_t total = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const index_t rf = specs[i].receptive_field();
    PIT_CHECK(dilations[i] >= 1 && dilations[i] <= rf,
              "ResTCN: dilation " << dilations[i] << " invalid for rf " << rf);
    total += specs[i].in_channels * specs[i].out_channels *
                 alive_taps(rf, dilations[i]) +
             specs[i].out_channels;  // bias
  }
  // Downsample 1x1 on block 0 (input_channels != hidden) + bias.
  if (config.input_channels != hidden) {
    total += config.input_channels * hidden + hidden;
  }
  // Head 1x1 + bias.
  total += hidden * config.output_channels + config.output_channels;
  return total;
}

}  // namespace pit::models
