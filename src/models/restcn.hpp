// ResTCN — the generic TCN of Bai et al. ("An empirical evaluation of
// generic convolutional and recurrent networks for sequence modeling"),
// as used by the paper on the Nottingham polyphonic-music benchmark.
//
// Four residual blocks of two causal temporal convolutions each (eight
// searchable convs), hidden width 150, hand-tuned kernel 5 with dilations
// (1, 1, 2, 2, 4, 4, 8, 8), 1x1 downsample on the first residual branch and
// a 1x1 output head producing per-step logits for the 88 piano keys.
#pragma once

#include <memory>
#include <vector>

#include "models/tcn_common.hpp"
#include "nn/dropout.hpp"

namespace pit::models {

struct ResTcnConfig {
  index_t input_channels = 88;
  index_t output_channels = 88;
  index_t hidden_channels = 150;
  index_t kernel_size = 5;
  /// Per-conv hand-tuned dilations; both convs of block b share an entry
  /// pair. Size must be 2 * num_blocks.
  std::vector<index_t> dilations = {1, 1, 2, 2, 4, 4, 8, 8};
  float dropout = 0.1F;
  /// Uniformly scales hidden channels (CPU-friendly reductions for tests
  /// and benches; 1.0 reproduces the paper-sized model).
  double channel_scale = 1.0;
};

/// Residual TCN over (N, input_channels, T) -> per-step logits
/// (N, output_channels, T).
class ResTCN : public nn::Module {
 public:
  /// `factory` materializes the eight searchable temporal convs; all other
  /// layers (downsample, head) are fixed 1x1 convolutions.
  ResTCN(const ResTcnConfig& config, const ConvFactory& factory,
         RandomEngine& rng);

  Tensor forward(const Tensor& input) override;

  /// The searchable temporal convs, in network order.
  std::vector<nn::Module*> temporal_convs() const;

  /// Hand-tuned geometry of the searchable convs for this config.
  static std::vector<TemporalConvSpec> conv_specs(const ResTcnConfig& config);

  // Layer access for the frozen inference compiler (src/runtime).
  std::size_t num_blocks() const { return downsamples_.size(); }
  /// 1x1 residual projection of block `b`, or null when the skip is the
  /// identity (matching channel counts).
  const nn::Conv1d* downsample(std::size_t b) const {
    return downsamples_.at(b).get();
  }
  const nn::Conv1d& head() const { return *head_; }

  /// Parameter count of the architecture with the given per-conv dilations
  /// assigned over the *seed* receptive fields (alive taps only), including
  /// all fixed layers. dilations.size() must match conv_specs().size().
  static index_t params_with_dilations(const ResTcnConfig& config,
                                       const std::vector<index_t>& dilations);

  const ResTcnConfig& config() const { return config_; }

 private:
  ResTcnConfig config_;
  std::vector<std::unique_ptr<nn::Module>> convs_;        // searchable
  std::vector<std::unique_ptr<nn::Conv1d>> downsamples_;  // 1x1 or null
  std::vector<std::unique_ptr<nn::Dropout>> dropouts_;
  std::unique_ptr<nn::Conv1d> head_;
};

}  // namespace pit::models
