// Dense row-major tensor shapes.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace pit {

/// Index/extent type used throughout the library.
using index_t = std::int64_t;

/// Shape of a dense row-major tensor. Rank 0 denotes a scalar.
///
/// Immutable value type; all dimension extents must be >= 1 except that an
/// empty (default-constructed) shape represents a scalar with numel() == 1.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<index_t> dims);
  explicit Shape(std::vector<index_t> dims);

  /// Number of dimensions (0 for scalars).
  int rank() const { return static_cast<int>(dims_.size()); }

  /// Extent of dimension `i`; negative `i` counts from the back.
  index_t dim(int i) const;
  index_t operator[](int i) const { return dim(i); }

  /// Total number of elements (1 for scalars).
  index_t numel() const;

  const std::vector<index_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Human-readable form, e.g. "(2, 3, 5)" or "()" for a scalar.
  std::string to_string() const;

 private:
  std::vector<index_t> dims_;
};

}  // namespace pit
