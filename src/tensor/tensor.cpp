#include "tensor/tensor.hpp"

#include <algorithm>
#include <sstream>

#include "tensor/autograd.hpp"
#include "tensor/error.hpp"

namespace pit {

namespace {

thread_local bool g_grad_mode = true;

std::shared_ptr<TensorImpl> make_impl(const Shape& shape, float fill) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data.assign(static_cast<std::size_t>(shape.numel()), fill);
  return impl;
}

}  // namespace

bool grad_mode_enabled() {
  return g_grad_mode;
}

NoGradGuard::NoGradGuard() : previous_(g_grad_mode) {
  g_grad_mode = false;
}

NoGradGuard::~NoGradGuard() {
  g_grad_mode = previous_;
}

Tensor Tensor::zeros(const Shape& shape) {
  return Tensor(make_impl(shape, 0.0F));
}

Tensor Tensor::ones(const Shape& shape) {
  return Tensor(make_impl(shape, 1.0F));
}

Tensor Tensor::full(const Shape& shape, float value) {
  return Tensor(make_impl(shape, value));
}

Tensor Tensor::scalar(float value) {
  return full(Shape{}, value);
}

Tensor Tensor::empty(const Shape& shape) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data.resize(static_cast<std::size_t>(shape.numel()));  // default-init
  return Tensor(std::move(impl));
}

Tensor Tensor::from_vector(const std::vector<float>& values,
                           const Shape& shape) {
  PIT_CHECK(static_cast<index_t>(values.size()) == shape.numel(),
            "from_vector: " << values.size() << " values for shape "
                            << shape.to_string());
  return from_buffer(FloatBuffer(values.begin(), values.end()), shape);
}

Tensor Tensor::from_buffer(FloatBuffer values, const Shape& shape) {
  PIT_CHECK(static_cast<index_t>(values.size()) == shape.numel(),
            "from_buffer: " << values.size() << " values for shape "
                            << shape.to_string());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(values);
  return Tensor(std::move(impl));
}

Tensor Tensor::randn(const Shape& shape, RandomEngine& rng, float stddev) {
  Tensor t = empty(shape);
  for (float& v : t.span()) {
    v = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::uniform(const Shape& shape, float lo, float hi,
                       RandomEngine& rng) {
  Tensor t = empty(shape);
  for (float& v : t.span()) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

const Shape& Tensor::shape() const {
  PIT_CHECK(defined(), "use of undefined tensor");
  return impl_->shape;
}

float* Tensor::data() {
  PIT_CHECK(defined(), "use of undefined tensor");
  return impl_->data.data();
}

const float* Tensor::data() const {
  PIT_CHECK(defined(), "use of undefined tensor");
  return impl_->data.data();
}

std::span<float> Tensor::span() {
  PIT_CHECK(defined(), "use of undefined tensor");
  return {impl_->data.data(), impl_->data.size()};
}

std::span<const float> Tensor::span() const {
  PIT_CHECK(defined(), "use of undefined tensor");
  return {impl_->data.data(), impl_->data.size()};
}

float Tensor::item() const {
  PIT_CHECK(numel() == 1,
            "item() on tensor with shape " << shape().to_string());
  return impl_->data[0];
}

float Tensor::at(std::initializer_list<index_t> idx) const {
  const Shape& s = shape();
  PIT_CHECK(static_cast<int>(idx.size()) == s.rank(),
            "at(): " << idx.size() << " indices for rank " << s.rank());
  index_t flat = 0;
  int d = 0;
  for (const index_t i : idx) {
    PIT_CHECK(i >= 0 && i < s.dim(d),
              "at(): index " << i << " out of range in dim " << d << " of "
                             << s.to_string());
    flat = flat * s.dim(d) + i;
    ++d;
  }
  return impl_->data[static_cast<std::size_t>(flat)];
}

Tensor Tensor::clone() const {
  PIT_CHECK(defined(), "clone of undefined tensor");
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;
  return Tensor(std::move(impl));
}

Tensor Tensor::detach() const {
  PIT_CHECK(defined(), "detach of undefined tensor");
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;  // copy; detached tensors are independent values
  return Tensor(std::move(impl));
}

Tensor Tensor::reshape(const Shape& new_shape) const {
  PIT_CHECK(defined(), "reshape of undefined tensor");
  PIT_CHECK(new_shape.numel() == numel(),
            "reshape: numel mismatch " << shape().to_string() << " -> "
                                       << new_shape.to_string());
  Tensor out = Tensor::from_buffer(
      FloatBuffer(impl_->data.begin(), impl_->data.end()), new_shape);
  const Tensor self = *this;
  return make_op_output(
      std::move(out), {self}, "reshape", [self](TensorImpl& o) {
        accumulate_grad(*self.impl(), {o.grad.data(), o.grad.size()});
      });
}

std::string Tensor::to_string() const {
  if (!defined()) {
    return "Tensor(undefined)";
  }
  std::ostringstream os;
  os << "Tensor" << shape().to_string() << " [";
  const auto view = span();
  const std::size_t preview = std::min<std::size_t>(view.size(), 8);
  for (std::size_t i = 0; i < preview; ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << view[i];
  }
  if (view.size() > preview) {
    os << ", ...";
  }
  os << "]";
  return os.str();
}

Tensor& Tensor::set_requires_grad(bool value) {
  PIT_CHECK(defined(), "set_requires_grad on undefined tensor");
  impl_->requires_grad = value;
  return *this;
}

bool Tensor::requires_grad() const {
  PIT_CHECK(defined(), "requires_grad on undefined tensor");
  return impl_->requires_grad;
}

bool Tensor::tracks_grad() const {
  PIT_CHECK(defined(), "tracks_grad on undefined tensor");
  return impl_->requires_grad || impl_->grad_fn != nullptr;
}

Tensor Tensor::grad() const {
  PIT_CHECK(defined(), "grad on undefined tensor");
  if (impl_->grad.empty()) {
    return Tensor::zeros(impl_->shape);
  }
  return Tensor::from_buffer(
      FloatBuffer(impl_->grad.begin(), impl_->grad.end()), impl_->shape);
}

float* Tensor::grad_data() {
  PIT_CHECK(defined(), "grad_data on undefined tensor");
  return grad_span(*impl_).data();
}

void Tensor::zero_grad() {
  PIT_CHECK(defined(), "zero_grad on undefined tensor");
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0F);
}

void Tensor::backward() {
  run_backward(*this);
}

}  // namespace pit
