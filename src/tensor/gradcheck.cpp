#include "tensor/gradcheck.hpp"

#include <cmath>
#include <sstream>

#include "tensor/error.hpp"
#include "tensor/ops.hpp"

namespace pit {

GradcheckResult gradcheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, const GradcheckOptions& opts) {
  GradcheckResult result;
  result.ok = true;

  // Analytic gradients.
  for (Tensor& in : inputs) {
    in.zero_grad();
  }
  Tensor out = fn(inputs);
  Tensor objective = sum(out);
  objective.backward();

  std::vector<Tensor> analytic;
  analytic.reserve(inputs.size());
  for (const Tensor& in : inputs) {
    analytic.push_back(in.grad());
  }

  // Numerical gradients via central differences, under NoGrad to keep the
  // perturbed evaluations off the autograd graph.
  NoGradGuard no_grad;
  for (std::size_t which = 0; which < inputs.size(); ++which) {
    Tensor& in = inputs[which];
    if (!in.requires_grad()) {
      continue;
    }
    const Tensor& ana = analytic[which];
    for (index_t i = 0; i < in.numel(); ++i) {
      float* slot = in.data() + i;
      const float saved = *slot;

      // Keep the evaluation results alive while summing (a temporary would
      // be destroyed before the loop body under C++20 range-for rules).
      *slot = saved + static_cast<float>(opts.eps);
      const Tensor out_plus = fn(inputs);
      double plus = 0.0;
      for (const float v : out_plus.span()) {
        plus += v;
      }
      *slot = saved - static_cast<float>(opts.eps);
      const Tensor out_minus = fn(inputs);
      double minus = 0.0;
      for (const float v : out_minus.span()) {
        minus += v;
      }
      *slot = saved;

      const double numeric = (plus - minus) / (2.0 * opts.eps);
      const double exact = ana.data()[i];
      const double abs_err = std::fabs(numeric - exact);
      const double denom = std::max(std::fabs(numeric), std::fabs(exact));
      const double rel_err = denom > 0.0 ? abs_err / denom : 0.0;
      result.max_abs_err = std::max(result.max_abs_err, abs_err);
      result.max_rel_err = std::max(result.max_rel_err, rel_err);
      if (abs_err > opts.atol && rel_err > opts.rtol && result.ok) {
        result.ok = false;
        std::ostringstream os;
        os << "input " << which << " element " << i << ": analytic " << exact
           << " vs numeric " << numeric << " (abs " << abs_err << ", rel "
           << rel_err << ")";
        result.detail = os.str();
      }
    }
  }
  return result;
}

}  // namespace pit
