// Dense float32 tensor with reverse-mode autograd.
//
// Tensor is a cheap-to-copy handle (shared_ptr to TensorImpl). Operations
// are free functions (see ops.hpp) that build a define-by-run graph; calling
// backward() on a scalar tensor propagates gradients to every reachable
// tensor that has requires_grad() set.
#pragma once

#include <functional>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "tensor/random.hpp"
#include "tensor/shape.hpp"

namespace pit {

struct TensorImpl;
struct Node;

/// Allocator that default-initializes on container growth, so trivially
/// constructible elements (floats) are left uninitialized instead of being
/// zero-filled. Value construction (assign/fill/push_back with an argument)
/// still writes real values, so zeroing remains explicit where it matters.
/// This is what lets Tensor::empty() and batch assembly skip the redundant
/// fill pass on buffers the caller overwrites completely.
template <class T>
struct DefaultInitAllocator {
  using value_type = T;

  DefaultInitAllocator() noexcept = default;
  template <class U>
  DefaultInitAllocator(const DefaultInitAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) { return std::allocator<T>().allocate(n); }
  void deallocate(T* p, std::size_t n) noexcept {
    std::allocator<T>().deallocate(p, n);
  }

  template <class U>
  void construct(U* p) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(p)) U;  // default-init: no-op for float
  }
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }

  friend bool operator==(const DefaultInitAllocator&,
                         const DefaultInitAllocator&) {
    return true;
  }
};

/// Backing buffer of every tensor: float vector without implicit zero-fill.
using FloatBuffer = std::vector<float, DefaultInitAllocator<float>>;

/// Handle to a dense row-major float tensor, optionally tracked by autograd.
class Tensor {
 public:
  /// Default-constructed tensors are "undefined"; any use other than
  /// defined() throws.
  Tensor() = default;

  // ---- Factories -------------------------------------------------------
  static Tensor zeros(const Shape& shape);
  static Tensor ones(const Shape& shape);
  static Tensor full(const Shape& shape, float value);
  /// Scalar (rank-0) tensor.
  static Tensor scalar(float value);
  /// Allocated but NOT initialized — the caller must overwrite every
  /// element before reading. The no-tape inference runtime and batch
  /// assembly use this to skip the zero-fill pass of zeros().
  static Tensor empty(const Shape& shape);
  /// Copies `values`; numel must match the shape.
  static Tensor from_vector(const std::vector<float>& values,
                            const Shape& shape);
  /// Takes ownership of `values` (no copy); numel must match the shape.
  static Tensor from_buffer(FloatBuffer values, const Shape& shape);
  /// I.i.d. normal entries with the given standard deviation.
  static Tensor randn(const Shape& shape, RandomEngine& rng,
                      float stddev = 1.0F);
  /// I.i.d. uniform entries in [lo, hi).
  static Tensor uniform(const Shape& shape, float lo, float hi,
                        RandomEngine& rng);

  // ---- Introspection ---------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int rank() const { return shape().rank(); }
  index_t dim(int i) const { return shape().dim(i); }
  index_t numel() const { return shape().numel(); }

  float* data();
  const float* data() const;
  std::span<float> span();
  std::span<const float> span() const;

  /// Value of a rank-0 (or single-element) tensor.
  float item() const;
  /// Element accessor for tests / debugging (row-major index arithmetic).
  float at(std::initializer_list<index_t> idx) const;

  /// Deep copy of the data (no autograd history).
  Tensor clone() const;
  /// Same storage, detached from the autograd graph.
  Tensor detach() const;
  /// Copy with a new shape (same numel). Differentiable.
  Tensor reshape(const Shape& new_shape) const;

  std::string to_string() const;

  // ---- Autograd --------------------------------------------------------
  Tensor& set_requires_grad(bool value);
  bool requires_grad() const;
  /// True if backward() through this tensor can reach a parameter.
  bool tracks_grad() const;

  /// Gradient accumulated by the last backward(); zeros if never touched.
  Tensor grad() const;
  /// Raw pointer into the gradient buffer (allocated on demand).
  float* grad_data();
  /// Clears the gradient buffer (keeps the allocation).
  void zero_grad();

  /// Reverse-mode sweep from this (scalar) tensor.
  void backward();

  // ---- Internal --------------------------------------------------------
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Backing storage for Tensor. Public members: this is an internal
/// aggregate manipulated by the op layer, not a user-facing invariant-holder.
struct TensorImpl {
  Shape shape;
  FloatBuffer data;
  FloatBuffer grad;  // empty until first accumulation
  bool requires_grad = false;
  std::shared_ptr<Node> grad_fn;  // null for leaves
};

/// RAII guard that disables gradient tracking on the current thread
/// (used for evaluation / inference passes).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// True when ops should record autograd nodes on this thread.
bool grad_mode_enabled();

}  // namespace pit
