// Differentiable tensor operations.
//
// All functions are pure (they allocate a fresh output) and record autograd
// nodes when grad mode is on and any input tracks gradients. Shapes must
// match exactly unless a function documents otherwise; violations throw
// pit::Error.
#pragma once

#include "tensor/tensor.hpp"

namespace pit {

// ---- Elementwise binary (same shape) ------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// ---- Scalar broadcast ----------------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

// ---- Unary ---------------------------------------------------------------
Tensor neg(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor tanh_op(const Tensor& a);
Tensor exp_op(const Tensor& a);
/// Natural log; caller must guarantee positive inputs.
Tensor log_op(const Tensor& a);
Tensor abs_op(const Tensor& a);
Tensor square(const Tensor& a);
Tensor sqrt_op(const Tensor& a);
/// Clamp to [lo, hi]; gradient passes only where the input was in range.
Tensor clamp(const Tensor& a, float lo, float hi);

/// Heaviside step at `threshold` (>= maps to 1) with a straight-through
/// estimator in backward: the gradient of the identity (BinaryConnect).
Tensor binarize(const Tensor& a, float threshold);

// ---- Reductions ------------------------------------------------------------
/// Sum of all elements -> scalar.
Tensor sum(const Tensor& a);
/// Mean of all elements -> scalar.
Tensor mean(const Tensor& a);

// ---- Linear algebra --------------------------------------------------------
/// (m x k) @ (k x n) -> (m x n).
Tensor matmul(const Tensor& a, const Tensor& b);
/// 2-D transpose.
Tensor transpose(const Tensor& a);

// ---- Structured ops used by the PIT mask construction ----------------------
/// Column-wise product of a (R x C) matrix -> vector of length C.
Tensor prod_dim0(const Tensor& a);
/// Replicate a length-R vector into the columns of an (R x cols) matrix.
Tensor replicate_cols(const Tensor& v, index_t cols);
/// Prepend a constant 1 to a vector: (n) -> (n+1). Gradient drops the head.
Tensor prepend_one(const Tensor& v);

}  // namespace pit
