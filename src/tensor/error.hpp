// Error handling for the PIT library.
//
// All precondition violations throw pit::Error via the PIT_CHECK macro so
// that callers get a file:line-annotated message instead of UB. Following
// the C++ Core Guidelines (E.2, ES.32) the only macro in the library is the
// ALL_CAPS check macro; everything else is a normal function.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pit {

/// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "PIT_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw Error(os.str());
}

}  // namespace detail
}  // namespace pit

/// Throws pit::Error with expression, location and a streamed message when
/// `cond` is false. Usage: PIT_CHECK(a == b, "a=" << a << " b=" << b);
#define PIT_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream pit_check_os_;                                   \
      pit_check_os_ << msg; /* NOLINT */                                  \
      ::pit::detail::raise_check_failure(#cond, __FILE__, __LINE__,       \
                                         pit_check_os_.str());            \
    }                                                                     \
  } while (false)
