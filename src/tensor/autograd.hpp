// Autograd graph internals and the op-authoring API.
//
// New differentiable operations (including the fused layer kernels in
// src/nn and the masked convolution in src/core) are written with
// make_op_output(): supply the forward result, the inputs, and a backward
// callback that reads the output gradient and accumulates into the inputs'
// gradients via accumulate_grad()/grad_ptr().
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace pit {

/// One node of the reverse-mode graph; owns the backward closure and keeps
/// its input tensors alive. A node is created per op output.
struct Node {
  std::string name;
  std::vector<std::shared_ptr<TensorImpl>> inputs;
  /// Reads `out.grad` and accumulates into the inputs' grad buffers.
  std::function<void(TensorImpl& out)> backward;
};

/// Wraps forward results into a graph-tracked tensor.
///
/// If grad mode is off or no input requires grad, the node is dropped and
/// the result is a plain leaf. `backward` must be safe to call exactly once.
Tensor make_op_output(Tensor result, const std::vector<Tensor>& inputs,
                      std::string name,
                      std::function<void(TensorImpl&)> backward);

/// Ensures `impl.grad` is allocated (zero-filled) and returns it.
std::span<float> grad_span(TensorImpl& impl);

/// Adds `delta` into the gradient buffer of `impl`.
void accumulate_grad(TensorImpl& impl, std::span<const float> delta);

/// Runs the reverse sweep from `root` (must be scalar); seeds d(root)/d(root)=1.
void run_backward(const Tensor& root);

}  // namespace pit
