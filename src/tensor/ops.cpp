#include "tensor/ops.hpp"

#include <cmath>
#include <vector>

#include "tensor/autograd.hpp"
#include "tensor/error.hpp"

namespace pit {

namespace {

bool wants_grad(const TensorImpl& impl) {
  return impl.requires_grad || impl.grad_fn != nullptr;
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  PIT_CHECK(a.shape() == b.shape(), op << ": shape mismatch "
                                       << a.shape().to_string() << " vs "
                                       << b.shape().to_string());
}

/// Shared skeleton for unary ops: out[i] = f(a[i]),
/// da[i] += dout[i] * dfdx(a[i], out[i]).
template <typename Fwd, typename Bwd>
Tensor unary_op(const Tensor& a, const char* name, Fwd fwd, Bwd dfdx) {
  Tensor out = Tensor::zeros(a.shape());
  const auto av = a.span();
  auto ov = out.span();
  for (std::size_t i = 0; i < av.size(); ++i) {
    ov[i] = fwd(av[i]);
  }
  const Tensor ta = a;
  const Tensor tout = out;
  return make_op_output(
      std::move(out), {a}, name, [ta, tout, dfdx](TensorImpl& o) {
        if (!wants_grad(*ta.impl())) {
          return;
        }
        auto ag = grad_span(*ta.impl());
        const auto av2 = ta.span();
        const auto ov2 = tout.span();
        for (std::size_t i = 0; i < ag.size(); ++i) {
          ag[i] += o.grad[i] * dfdx(av2[i], ov2[i]);
        }
      });
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = Tensor::zeros(a.shape());
  const auto av = a.span();
  const auto bv = b.span();
  auto ov = out.span();
  for (std::size_t i = 0; i < av.size(); ++i) {
    ov[i] = av[i] + bv[i];
  }
  const Tensor ta = a;
  const Tensor tb = b;
  return make_op_output(std::move(out), {a, b}, "add", [ta, tb](TensorImpl& o) {
    if (wants_grad(*ta.impl())) {
      accumulate_grad(*ta.impl(), {o.grad.data(), o.grad.size()});
    }
    if (wants_grad(*tb.impl())) {
      accumulate_grad(*tb.impl(), {o.grad.data(), o.grad.size()});
    }
  });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = Tensor::zeros(a.shape());
  const auto av = a.span();
  const auto bv = b.span();
  auto ov = out.span();
  for (std::size_t i = 0; i < av.size(); ++i) {
    ov[i] = av[i] - bv[i];
  }
  const Tensor ta = a;
  const Tensor tb = b;
  return make_op_output(std::move(out), {a, b}, "sub", [ta, tb](TensorImpl& o) {
    if (wants_grad(*ta.impl())) {
      accumulate_grad(*ta.impl(), {o.grad.data(), o.grad.size()});
    }
    if (wants_grad(*tb.impl())) {
      auto bg = grad_span(*tb.impl());
      for (std::size_t i = 0; i < bg.size(); ++i) {
        bg[i] -= o.grad[i];
      }
    }
  });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out = Tensor::zeros(a.shape());
  const auto av = a.span();
  const auto bv = b.span();
  auto ov = out.span();
  for (std::size_t i = 0; i < av.size(); ++i) {
    ov[i] = av[i] * bv[i];
  }
  const Tensor ta = a;
  const Tensor tb = b;
  return make_op_output(std::move(out), {a, b}, "mul", [ta, tb](TensorImpl& o) {
    const auto av2 = ta.span();
    const auto bv2 = tb.span();
    if (wants_grad(*ta.impl())) {
      auto ag = grad_span(*ta.impl());
      for (std::size_t i = 0; i < ag.size(); ++i) {
        ag[i] += o.grad[i] * bv2[i];
      }
    }
    if (wants_grad(*tb.impl())) {
      auto bg = grad_span(*tb.impl());
      for (std::size_t i = 0; i < bg.size(); ++i) {
        bg[i] += o.grad[i] * av2[i];
      }
    }
  });
}

Tensor div(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "div");
  Tensor out = Tensor::zeros(a.shape());
  const auto av = a.span();
  const auto bv = b.span();
  auto ov = out.span();
  for (std::size_t i = 0; i < av.size(); ++i) {
    ov[i] = av[i] / bv[i];
  }
  const Tensor ta = a;
  const Tensor tb = b;
  return make_op_output(std::move(out), {a, b}, "div", [ta, tb](TensorImpl& o) {
    const auto av2 = ta.span();
    const auto bv2 = tb.span();
    if (wants_grad(*ta.impl())) {
      auto ag = grad_span(*ta.impl());
      for (std::size_t i = 0; i < ag.size(); ++i) {
        ag[i] += o.grad[i] / bv2[i];
      }
    }
    if (wants_grad(*tb.impl())) {
      auto bg = grad_span(*tb.impl());
      for (std::size_t i = 0; i < bg.size(); ++i) {
        bg[i] -= o.grad[i] * av2[i] / (bv2[i] * bv2[i]);
      }
    }
  });
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(
      a, "add_scalar", [s](float x) { return x + s; },
      [](float, float) { return 1.0F; });
}

Tensor mul_scalar(const Tensor& a, float s) {
  return unary_op(
      a, "mul_scalar", [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

Tensor neg(const Tensor& a) {
  return mul_scalar(a, -1.0F);
}

Tensor relu(const Tensor& a) {
  return unary_op(
      a, "relu", [](float x) { return x > 0.0F ? x : 0.0F; },
      [](float x, float) { return x > 0.0F ? 1.0F : 0.0F; });
}

Tensor sigmoid(const Tensor& a) {
  return unary_op(
      a, "sigmoid", [](float x) { return 1.0F / (1.0F + std::exp(-x)); },
      [](float, float y) { return y * (1.0F - y); });
}

Tensor tanh_op(const Tensor& a) {
  return unary_op(
      a, "tanh", [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0F - y * y; });
}

Tensor exp_op(const Tensor& a) {
  return unary_op(
      a, "exp", [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor log_op(const Tensor& a) {
  return unary_op(
      a, "log", [](float x) { return std::log(x); },
      [](float x, float) { return 1.0F / x; });
}

Tensor abs_op(const Tensor& a) {
  return unary_op(
      a, "abs", [](float x) { return std::fabs(x); },
      [](float x, float) { return x > 0.0F ? 1.0F : (x < 0.0F ? -1.0F : 0.0F); });
}

Tensor square(const Tensor& a) {
  return unary_op(
      a, "square", [](float x) { return x * x; },
      [](float x, float) { return 2.0F * x; });
}

Tensor sqrt_op(const Tensor& a) {
  return unary_op(
      a, "sqrt", [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5F / y; });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  PIT_CHECK(lo <= hi, "clamp: lo " << lo << " > hi " << hi);
  return unary_op(
      a, "clamp",
      [lo, hi](float x) { return x < lo ? lo : (x > hi ? hi : x); },
      [lo, hi](float x, float) {
        return (x >= lo && x <= hi) ? 1.0F : 0.0F;
      });
}

Tensor binarize(const Tensor& a, float threshold) {
  // Forward: Heaviside step (Eq. 2 of the paper). Backward: straight-through
  // estimator — the step is replaced by the identity, so the gradient
  // passes unchanged (BinaryConnect).
  return unary_op(
      a, "binarize",
      [threshold](float x) { return x >= threshold ? 1.0F : 0.0F; },
      [](float, float) { return 1.0F; });
}

Tensor sum(const Tensor& a) {
  double acc = 0.0;
  for (const float v : a.span()) {
    acc += v;
  }
  Tensor out = Tensor::scalar(static_cast<float>(acc));
  const Tensor ta = a;
  return make_op_output(std::move(out), {a}, "sum", [ta](TensorImpl& o) {
    if (!wants_grad(*ta.impl())) {
      return;
    }
    auto ag = grad_span(*ta.impl());
    const float g = o.grad[0];
    for (float& v : ag) {
      v += g;
    }
  });
}

Tensor mean(const Tensor& a) {
  const auto n = static_cast<float>(a.numel());
  double acc = 0.0;
  for (const float v : a.span()) {
    acc += v;
  }
  Tensor out = Tensor::scalar(static_cast<float>(acc / n));
  const Tensor ta = a;
  return make_op_output(std::move(out), {a}, "mean", [ta, n](TensorImpl& o) {
    if (!wants_grad(*ta.impl())) {
      return;
    }
    auto ag = grad_span(*ta.impl());
    const float g = o.grad[0] / n;
    for (float& v : ag) {
      v += g;
    }
  });
}

namespace {

/// C = A(m x k) * B(k x n), accumulating into C (caller zero-fills).
void gemm_acc(const float* a, const float* b, float* c, index_t m, index_t k,
              index_t n) {
  for (index_t i = 0; i < m; ++i) {
    for (index_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0F) {
        continue;
      }
      const float* brow = b + p * n;
      float* crow = c + i * n;
      for (index_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

/// C += A(m x k) * B^T where B is (n x k)  => C is (m x n).
void gemm_bt_acc(const float* a, const float* b, float* c, index_t m,
                 index_t k, index_t n) {
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      const float* arow = a + i * k;
      const float* brow = b + j * k;
      float acc = 0.0F;
      for (index_t p = 0; p < k; ++p) {
        acc += arow[p] * brow[p];
      }
      c[i * n + j] += acc;
    }
  }
}

/// C += A^T * B where A is (m x k), B is (m x n) => C is (k x n).
void gemm_at_acc(const float* a, const float* b, float* c, index_t m,
                 index_t k, index_t n) {
  for (index_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (index_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0F) {
        continue;
      }
      float* crow = c + p * n;
      for (index_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  PIT_CHECK(a.rank() == 2 && b.rank() == 2,
            "matmul expects rank-2 tensors, got " << a.shape().to_string()
                                                  << " @ "
                                                  << b.shape().to_string());
  const index_t m = a.dim(0);
  const index_t k = a.dim(1);
  const index_t n = b.dim(1);
  PIT_CHECK(b.dim(0) == k, "matmul: inner dims " << a.shape().to_string()
                                                 << " @ "
                                                 << b.shape().to_string());
  Tensor out = Tensor::zeros(Shape{m, n});
  gemm_acc(a.data(), b.data(), out.data(), m, k, n);
  const Tensor ta = a;
  const Tensor tb = b;
  return make_op_output(
      std::move(out), {a, b}, "matmul", [ta, tb, m, k, n](TensorImpl& o) {
        if (wants_grad(*ta.impl())) {
          auto ag = grad_span(*ta.impl());
          gemm_bt_acc(o.grad.data(), tb.data(), ag.data(), m, n, k);
        }
        if (wants_grad(*tb.impl())) {
          auto bg = grad_span(*tb.impl());
          gemm_at_acc(ta.data(), o.grad.data(), bg.data(), m, k, n);
        }
      });
}

Tensor transpose(const Tensor& a) {
  PIT_CHECK(a.rank() == 2,
            "transpose expects rank-2, got " << a.shape().to_string());
  const index_t r = a.dim(0);
  const index_t c = a.dim(1);
  Tensor out = Tensor::zeros(Shape{c, r});
  const float* ad = a.data();
  float* od = out.data();
  for (index_t i = 0; i < r; ++i) {
    for (index_t j = 0; j < c; ++j) {
      od[j * r + i] = ad[i * c + j];
    }
  }
  const Tensor ta = a;
  return make_op_output(
      std::move(out), {a}, "transpose", [ta, r, c](TensorImpl& o) {
        if (!wants_grad(*ta.impl())) {
          return;
        }
        auto ag = grad_span(*ta.impl());
        for (index_t i = 0; i < r; ++i) {
          for (index_t j = 0; j < c; ++j) {
            ag[i * c + j] += o.grad[j * r + i];
          }
        }
      });
}

Tensor prod_dim0(const Tensor& a) {
  PIT_CHECK(a.rank() == 2,
            "prod_dim0 expects rank-2, got " << a.shape().to_string());
  const index_t rows = a.dim(0);
  const index_t cols = a.dim(1);
  Tensor out = Tensor::ones(Shape{cols});
  const float* ad = a.data();
  float* od = out.data();
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      od[c] *= ad[r * cols + c];
    }
  }
  const Tensor ta = a;
  return make_op_output(
      std::move(out), {a}, "prod_dim0", [ta, rows, cols](TensorImpl& o) {
        if (!wants_grad(*ta.impl())) {
          return;
        }
        // d(prod_r x[r,c]) / d x[r,c] = prod of the other rows; computed via
        // prefix/suffix products so zeros are handled exactly.
        auto ag = grad_span(*ta.impl());
        const float* ad2 = ta.data();
        std::vector<float> prefix(static_cast<std::size_t>(rows) + 1);
        std::vector<float> suffix(static_cast<std::size_t>(rows) + 1);
        for (index_t c = 0; c < cols; ++c) {
          prefix[0] = 1.0F;
          for (index_t r = 0; r < rows; ++r) {
            prefix[r + 1] = prefix[r] * ad2[r * cols + c];
          }
          suffix[rows] = 1.0F;
          for (index_t r = rows - 1; r >= 0; --r) {
            suffix[r] = suffix[r + 1] * ad2[r * cols + c];
          }
          for (index_t r = 0; r < rows; ++r) {
            ag[r * cols + c] += o.grad[c] * prefix[r] * suffix[r + 1];
          }
        }
      });
}

Tensor replicate_cols(const Tensor& v, index_t cols) {
  PIT_CHECK(v.rank() == 1,
            "replicate_cols expects rank-1, got " << v.shape().to_string());
  PIT_CHECK(cols >= 1, "replicate_cols: cols must be >= 1, got " << cols);
  const index_t rows = v.dim(0);
  Tensor out = Tensor::zeros(Shape{rows, cols});
  const float* vd = v.data();
  float* od = out.data();
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      od[r * cols + c] = vd[r];
    }
  }
  const Tensor tv = v;
  return make_op_output(
      std::move(out), {v}, "replicate_cols", [tv, rows, cols](TensorImpl& o) {
        if (!wants_grad(*tv.impl())) {
          return;
        }
        auto vg = grad_span(*tv.impl());
        for (index_t r = 0; r < rows; ++r) {
          float acc = 0.0F;
          for (index_t c = 0; c < cols; ++c) {
            acc += o.grad[static_cast<std::size_t>(r * cols + c)];
          }
          vg[r] += acc;
        }
      });
}

Tensor prepend_one(const Tensor& v) {
  PIT_CHECK(v.rank() == 1,
            "prepend_one expects rank-1, got " << v.shape().to_string());
  const index_t n = v.dim(0);
  Tensor out = Tensor::zeros(Shape{n + 1});
  out.data()[0] = 1.0F;
  const float* vd = v.data();
  for (index_t i = 0; i < n; ++i) {
    out.data()[i + 1] = vd[i];
  }
  const Tensor tv = v;
  return make_op_output(
      std::move(out), {v}, "prepend_one", [tv, n](TensorImpl& o) {
        if (!wants_grad(*tv.impl())) {
          return;
        }
        auto vg = grad_span(*tv.impl());
        for (index_t i = 0; i < n; ++i) {
          vg[i] += o.grad[static_cast<std::size_t>(i + 1)];
        }
      });
}

}  // namespace pit
