// Deterministic pseudo-random number generation.
//
// All stochastic components in the library (weight init, dropout, data
// synthesis, loader shuffling, NAS path sampling) draw from explicitly
// seeded RandomEngine instances, never from a hidden global, so every
// experiment in the repository is reproducible bit-for-bit on one platform.
#pragma once

#include <array>
#include <cstdint>

#include "tensor/shape.hpp"

namespace pit {

/// xoshiro256++ engine (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator; also provides the float/int helpers
/// the library needs so behaviour does not depend on libstdc++'s
/// distribution implementations.
class RandomEngine {
 public:
  using result_type = std::uint64_t;

  explicit RandomEngine(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);
  /// Uniform integer in [0, n).
  index_t randint(index_t n);
  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p);

  /// Derive an independent engine (e.g. one per module) from this one.
  RandomEngine split();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace pit
