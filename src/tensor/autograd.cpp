#include "tensor/autograd.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "tensor/error.hpp"

namespace pit {

Tensor make_op_output(Tensor result, const std::vector<Tensor>& inputs,
                      std::string name,
                      std::function<void(TensorImpl&)> backward) {
  PIT_CHECK(result.defined(), "make_op_output: undefined result for " << name);
  if (!grad_mode_enabled()) {
    return result;
  }
  bool needs_grad = false;
  for (const Tensor& in : inputs) {
    if (in.defined() && in.tracks_grad()) {
      needs_grad = true;
      break;
    }
  }
  if (!needs_grad) {
    return result;
  }
  auto node = std::make_shared<Node>();
  node->name = std::move(name);
  node->backward = std::move(backward);
  node->inputs.reserve(inputs.size());
  for (const Tensor& in : inputs) {
    if (in.defined()) {
      node->inputs.push_back(in.impl());
    }
  }
  result.impl()->grad_fn = std::move(node);
  return result;
}

std::span<float> grad_span(TensorImpl& impl) {
  if (impl.grad.empty()) {
    impl.grad.assign(impl.data.size(), 0.0F);
  }
  return {impl.grad.data(), impl.grad.size()};
}

void accumulate_grad(TensorImpl& impl, std::span<const float> delta) {
  PIT_CHECK(delta.size() == impl.data.size(),
            "accumulate_grad: size mismatch " << delta.size() << " vs "
                                              << impl.data.size());
  auto g = grad_span(impl);
  for (std::size_t i = 0; i < delta.size(); ++i) {
    g[i] += delta[i];
  }
}

namespace {

/// Iterative post-order topological sort over the grad_fn DAG. Returns
/// *shared* handles: intermediate impls are owned only by their consumer
/// nodes, so the order vector must keep them alive until the final
/// graph-release loop has finished resetting grad_fns.
std::vector<std::shared_ptr<TensorImpl>> topo_order(
    const std::shared_ptr<TensorImpl>& root) {
  std::vector<std::shared_ptr<TensorImpl>> order;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    std::shared_ptr<TensorImpl> impl;
    std::size_t next_child;
  };
  std::vector<Frame> stack;
  if (root->grad_fn != nullptr) {
    stack.push_back({root, 0});
    visited.insert(root.get());
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    Node& node = *frame.impl->grad_fn;
    if (frame.next_child < node.inputs.size()) {
      const std::shared_ptr<TensorImpl>& child =
          node.inputs[frame.next_child];
      ++frame.next_child;
      if (child->grad_fn != nullptr && visited.insert(child.get()).second) {
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(frame.impl);
      stack.pop_back();
    }
  }
  // Post-order gives producers before consumers; reverse for backprop.
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

void run_backward(const Tensor& root) {
  PIT_CHECK(root.defined(), "backward on undefined tensor");
  PIT_CHECK(root.numel() == 1,
            "backward requires a scalar root, got shape "
                << root.shape().to_string());
  TensorImpl& root_impl = *root.impl();
  auto g = grad_span(root_impl);
  g[0] += 1.0F;
  if (root_impl.grad_fn == nullptr) {
    return;
  }
  const std::vector<std::shared_ptr<TensorImpl>> order =
      topo_order(root.impl());
  for (const auto& impl : order) {
    // Ensure the output grad buffer exists even if no consumer touched it
    // (can happen for dead branches); backward callbacks read impl->grad.
    grad_span(*impl);
    impl->grad_fn->backward(*impl);
  }
  // Release the graph so intermediate buffers are freed; parameters (leaves)
  // keep their accumulated gradients. The shared handles in `order` keep
  // every impl alive until all grad_fns are reset.
  for (const auto& impl : order) {
    impl->grad_fn.reset();
  }
}

}  // namespace pit
