#include "tensor/shape.hpp"

#include <sstream>

#include "tensor/error.hpp"

namespace pit {

Shape::Shape(std::initializer_list<index_t> dims)
    : Shape(std::vector<index_t>(dims)) {}

Shape::Shape(std::vector<index_t> dims) : dims_(std::move(dims)) {
  for (const index_t d : dims_) {
    PIT_CHECK(d >= 1, "shape dimensions must be >= 1, got " << to_string());
  }
}

index_t Shape::dim(int i) const {
  const int r = rank();
  if (i < 0) {
    i += r;
  }
  PIT_CHECK(i >= 0 && i < r,
            "dimension index " << i << " out of range for " << to_string());
  return dims_[static_cast<std::size_t>(i)];
}

index_t Shape::numel() const {
  index_t n = 1;
  for (const index_t d : dims_) {
    n *= d;
  }
  return n;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << dims_[i];
  }
  os << ")";
  return os.str();
}

}  // namespace pit
