#include "tensor/random.hpp"

#include <cmath>
#include <numbers>

#include "tensor/error.hpp"

namespace pit {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

RandomEngine::RandomEngine(std::uint64_t seed) {
  // Seed the full 256-bit state from splitmix64 as recommended by the
  // xoshiro authors; guards against the all-zero state.
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

RandomEngine::result_type RandomEngine::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double RandomEngine::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double RandomEngine::uniform(double lo, double hi) {
  PIT_CHECK(lo <= hi, "uniform bounds inverted: [" << lo << ", " << hi << ")");
  return lo + (hi - lo) * uniform();
}

double RandomEngine::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double RandomEngine::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

index_t RandomEngine::randint(index_t n) {
  PIT_CHECK(n > 0, "randint bound must be positive, got " << n);
  // Debiased modulo (rejection sampling on the top range).
  const std::uint64_t un = static_cast<std::uint64_t>(n);
  const std::uint64_t limit = max() - max() % un;
  std::uint64_t v = 0;
  do {
    v = (*this)();
  } while (v >= limit);
  return static_cast<index_t>(v % un);
}

bool RandomEngine::bernoulli(double p) {
  return uniform() < p;
}

RandomEngine RandomEngine::split() {
  return RandomEngine((*this)());
}

}  // namespace pit
