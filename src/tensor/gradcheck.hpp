// Numerical gradient checking for differentiable ops and modules.
//
// Compares reverse-mode gradients against central finite differences on
// small float32 tensors. Used throughout the test suite to validate every
// hand-written backward pass (conv, batchnorm, losses, the PIT mask chain).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace pit {

struct GradcheckResult {
  bool ok = false;
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  std::string detail;  // filled with the first offending entry when !ok
};

struct GradcheckOptions {
  double eps = 1e-2;       // finite-difference step (float32 needs a coarse one)
  double atol = 5e-3;      // absolute tolerance
  double rtol = 5e-2;      // relative tolerance
};

/// Checks d(sum of fn output)/d(inputs[i]) for every input that has
/// requires_grad set. `fn` may return a tensor of any shape; the scalar
/// objective is its sum.
GradcheckResult gradcheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, const GradcheckOptions& opts = {});

}  // namespace pit
